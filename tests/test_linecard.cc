/**
 * @file
 * Tests of the line-card tier (src/linecard/): --card-jobs
 * byte-identity across workloads (including a mapped-fault +
 * control-churn cell), the one-chip anchor against the streaming chip
 * harness, dispatcher split invariants, metric merges, shared-DRAM
 * stat coherence and config validation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/experiment.hh"
#include "fault/fault_map.hh"
#include "linecard/card.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "sweep/sink.hh"
#include "sweep/spec.hh"

using namespace clumsy;
using namespace clumsy::linecard;

namespace
{

core::ExperimentConfig
smallConfig()
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 240;
    cfg.trials = 2;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    return cfg;
}

/**
 * Everything a card experiment produced, as one comparable string:
 * the golden digest, every golden and faulty card metric, and the
 * fatal fraction. Byte-equality of this repr is the determinism bar.
 */
std::string
reprOf(const CardExperimentResult &res)
{
    return sweep::hexU64(res.golden.valueDigest) +
           sweep::cardMetricsJson(res.golden.card) +
           sweep::cardMetricsJson(res.faultyCard) +
           sweep::formatDouble(res.fatalFraction);
}

} // namespace

// --- --card-jobs byte-identity ---------------------------------------

/**
 * The headline contract: every job count — serial, 2, 4 and the
 * hardware default — produces byte-identical results, on three
 * workloads that between them cover round-robin/flow/shortest
 * dispatch, per-chip Cr spread, control-plane churn and a spatially
 * mapped fault cell.
 */
TEST(LineCard, CardJobsAreByteIdenticalAcrossWorkloads)
{
    struct Workload
    {
        std::string app;
        core::ExperimentConfig cfg;
        npu::NpuConfig npu;
        CardConfig card;
    };
    std::vector<Workload> workloads;

    { // crc: 2 chips, round-robin, default DRAM geometry.
        Workload w;
        w.app = "crc";
        w.cfg = smallConfig();
        w.card.chips = 2;
        w.card.dram.banks = 4;
        workloads.push_back(w);
    }
    { // route: 4 chips, flow dispatch, tight bank count, Cr spread.
        Workload w;
        w.app = "route";
        w.cfg = smallConfig();
        w.npu.peCount = 2;
        w.npu.dispatch = npu::DispatchPolicy::FlowHash;
        w.card.chips = 4;
        w.card.dispatch = npu::DispatchPolicy::FlowHash;
        w.card.dram.banks = 2;
        w.card.perChipCr = {0.5, 0.45, 0.55, 0.5};
        workloads.push_back(w);
    }
    { // lpm: mapped faults + control churn on a 3-chip card.
        Workload w;
        w.app = "lpm";
        w.cfg = smallConfig();
        w.cfg.ctrl.rate = 100;
        w.cfg.ctrl.mix = ctrl::CtrlMix::Fib;
        w.cfg.processor.faultMap =
            fault::faultMapSpecFromString("spatial");
        w.card.chips = 3;
        w.card.dispatch = npu::DispatchPolicy::ShortestQueue;
        w.card.dram.banks = 4;
        workloads.push_back(w);
    }

    for (const Workload &w : workloads) {
        CardConfig serial = w.card;
        serial.cardJobs = 1;
        const std::string ref = reprOf(runCardExperiment(
            apps::appFactory(w.app), w.cfg, w.npu, serial));
        for (const unsigned jobs : {2u, 4u, 0u}) {
            CardConfig parallel = w.card;
            parallel.cardJobs = jobs;
            const std::string got = reprOf(runCardExperiment(
                apps::appFactory(w.app), w.cfg, w.npu, parallel));
            EXPECT_EQ(got, ref)
                << w.app << " diverged at card-jobs " << jobs;
        }
    }
}

// --- the one-chip anchor ---------------------------------------------

/**
 * A one-chip card with the DRAM model off is the streaming chip
 * harness, bit for bit: chip 0 is unsalted, the split assigns it every
 * packet, and no fabric sits between its L2 and memory. Golden and a
 * faulty trial both anchor.
 */
TEST(LineCard, OneChipCardMatchesChipStreamBitForBit)
{
    const core::ExperimentConfig cfg = smallConfig();
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
    CardConfig card;
    card.chips = 1;
    card.dram.banks = 0;

    const core::AppFactory factory = apps::appFactory("route");
    for (const bool golden : {true, false}) {
        const unsigned trial = golden ? 0 : 1;
        const CardRunResult run =
            runCard(factory, cfg, npuCfg, card, golden, trial);
        const npu::ChipStreamResult chip =
            npu::runChipStream(factory, cfg, npuCfg, golden, trial);

        ASSERT_EQ(run.chips.size(), 1u);
        EXPECT_EQ(run.chips[0].valueDigest, chip.valueDigest);
        EXPECT_EQ(run.valueDigest != 0, true);
        EXPECT_EQ(sweep::chipMetricsJson(run.chips[0].chip),
                  sweep::chipMetricsJson(chip.chip));
        EXPECT_EQ(run.chips[0].merged.packetsProcessed,
                  chip.merged.packetsProcessed);
        EXPECT_EQ(run.chips[0].merged.instructions,
                  chip.merged.instructions);
        EXPECT_EQ(run.card.packetsProcessed,
                  static_cast<double>(chip.merged.packetsProcessed));
        // No shared DRAM: the card must report zero DRAM demand.
        EXPECT_EQ(run.card.dramAccesses, 0.0);
        EXPECT_EQ(run.card.dramStallCycles, 0.0);
    }
}

// --- split invariants -------------------------------------------------

TEST(LineCard, AssignCountsPartitionTheTrace)
{
    const core::ExperimentConfig cfg = smallConfig();
    const core::AppFactory factory = apps::appFactory("route");
    const net::TraceConfig trace =
        core::resolveTraceConfig(cfg, *factory());
    const std::uint64_t packets = 1003;

    for (const npu::DispatchPolicy policy :
         {npu::DispatchPolicy::RoundRobin, npu::DispatchPolicy::FlowHash,
          npu::DispatchPolicy::ShortestQueue}) {
        CardConfig card;
        card.chips = 4;
        card.dispatch = policy;
        const std::vector<std::uint64_t> counts =
            cardAssignCounts(trace, 0, card, packets);
        ASSERT_EQ(counts.size(), card.chips);
        std::uint64_t total = 0;
        std::uint64_t lo = packets, hi = 0;
        for (const std::uint64_t n : counts) {
            total += n;
            lo = n < lo ? n : lo;
            hi = n > hi ? n : hi;
        }
        EXPECT_EQ(total, packets);
        // Count-based policies balance to within one packet.
        if (policy != npu::DispatchPolicy::FlowHash)
            EXPECT_LE(hi - lo, 1u);
    }
}

// --- metric merging ---------------------------------------------------

/** mergeCardRunMetrics sums counters across the chips of one run. */
TEST(LineCard, MergeCardRunMetricsSumsChipCounters)
{
    const core::ExperimentConfig cfg = smallConfig();
    const npu::NpuConfig npuCfg;
    CardConfig card;
    card.chips = 3;
    card.dram.banks = 4;

    const CardRunResult run =
        runCard(apps::appFactory("crc"), cfg, npuCfg, card);
    ASSERT_EQ(run.chips.size(), 3u);

    std::uint64_t processed = 0, attempted = 0, instructions = 0;
    for (const npu::ChipStreamResult &chip : run.chips) {
        processed += chip.merged.packetsProcessed;
        attempted += chip.merged.packetsAttempted;
        instructions += chip.merged.instructions;
    }
    const core::RunMetrics merged = mergeCardRunMetrics(run);
    EXPECT_EQ(merged.packetsProcessed, processed);
    EXPECT_EQ(merged.packetsAttempted, attempted);
    EXPECT_EQ(merged.instructions, instructions);
    EXPECT_EQ(processed, cfg.numPackets);

    // Card rollups agree with the same per-chip numbers.
    EXPECT_EQ(run.card.packetsProcessed,
              static_cast<double>(processed));
    ASSERT_EQ(run.card.chipPackets.size(), 3u);
    EXPECT_GE(run.card.loadImbalance, 1.0);
}

// --- shared-DRAM stat coherence --------------------------------------

/**
 * With the model on, the card-level DRAM stats obey the model's own
 * invariant (hits + misses + conflicts == accesses) and the hit
 * fraction is consistent with the counts.
 */
TEST(LineCard, DramStatsAreCoherent)
{
    const core::ExperimentConfig cfg = smallConfig();
    const npu::NpuConfig npuCfg;
    CardConfig card;
    card.chips = 2;
    card.dram.banks = 4;

    const CardRunResult run =
        runCard(apps::appFactory("route"), cfg, npuCfg, card);
    const CardMetrics &m = run.card;
    EXPECT_GT(m.dramAccesses, 0.0);
    EXPECT_EQ(m.dramRowHits + m.dramRowMisses + m.dramRowConflicts,
              m.dramAccesses);
    EXPECT_DOUBLE_EQ(m.dramRowHitFraction,
                     m.dramRowHits / m.dramAccesses);
    EXPECT_GE(m.dramStallCycles, 0.0);
}

// --- validation -------------------------------------------------------

TEST(LineCardConfig, ValidateRejectsNonsense)
{
    {
        CardConfig card;
        card.chips = 0;
        EXPECT_DEATH(card.validate(),
                     "a line card needs at least one chip");
    }
    {
        CardConfig card;
        card.chips = 3;
        card.perChipCr = {0.5, 0.5}; // wrong length
        EXPECT_DEATH(card.validate(), "per-chip Cr list names");
    }
    {
        CardConfig card;
        card.chips = 2;
        card.perChipCr = {0.5, 1.5}; // out of range
        EXPECT_DEATH(card.validate(), "outside");
    }
    {
        CardConfig card;
        card.dram.rowBytes = 100; // invalid geometry propagates
        EXPECT_DEATH(card.validate(), "power of two");
    }
}
