/**
 * @file
 * Tests of the genuinely shared L2 (src/npu/shared_l2.*): array-level
 * invariants (occupancy, per-engine stat consistency, divergence
 * monotonicity, victim routing), MSHR merging at the port, the
 * value-preservation guarantee at chip level (shared vs private runs
 * compute identical marked values), bit-identity of the degenerate
 * configurations (one engine; l2=private), flow-rehash dispatch
 * properties, and completion uniqueness under backpressure.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/experiment.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/l2_port.hh"
#include "net/trace_gen.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "npu/dispatcher.hh"
#include "npu/shared_l2.hh"
#include "sweep/runner.hh"
#include "sweep/sink.hh"
#include "sweep/spec.hh"

using namespace clumsy;
using namespace clumsy::npu;

namespace
{

/**
 * A tiny shared L2 for unit tests: 2-way, 16 sets, 128-byte lines
 * (4 KiB array, set span 2 KiB) over 8 KiB per-engine stores — small
 * enough that evictions are easy to provoke, and the 8 KiB coloring
 * stride is a multiple of the 2 KiB set span as the model requires.
 */
constexpr SimSize kMemBytes = 8192;
constexpr SimSize kLineBytes = 128;

mem::CacheGeometry
tinyGeometry()
{
    return mem::CacheGeometry{4096, 2, 128, 22};
}

struct TinySharedL2
{
    std::vector<mem::BackingStore> stores;
    SharedL2Cache shared;

    explicit TinySharedL2(unsigned peCount)
        : stores(peCount, mem::BackingStore(kMemBytes)),
          shared(tinyGeometry(), mem::CheckCodec::Parity, kMemBytes,
                 peCount)
    {
        // Identical contents everywhere: every line starts shared.
        for (unsigned pe = 0; pe < peCount; ++pe) {
            for (SimAddr a = 0; a < kMemBytes; a += 4)
                stores[pe].write32(a, 0x1000u + a);
            shared.attach(pe, &stores[pe], nullptr);
        }
        shared.seedDivergence();
    }

    /** Fill the line at base from pe's own store. */
    void refill(unsigned pe, SimAddr base)
    {
        std::uint8_t buf[kLineBytes];
        stores[pe].readBlock(base, buf, kLineBytes);
        shared.fill(pe, base, buf);
    }
};

core::ExperimentConfig
smallConfig()
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 300;
    cfg.trials = 2;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    return cfg;
}

/** Sum of one per-engine counter over all engines. */
std::uint64_t
sumStat(const SharedL2Cache &shared, unsigned peCount,
        std::uint64_t SharedL2Cache::EngineStats::*field)
{
    std::uint64_t total = 0;
    for (unsigned pe = 0; pe < peCount; ++pe)
        total += shared.engineStats(pe).*field;
    return total;
}

} // namespace

// --- array-level invariants -------------------------------------------

/**
 * The books balance: every lookup lands in exactly one engine's
 * hit/miss counter AND the array's own counter, so the per-engine
 * sums must equal the array stats — and the array can never hold more
 * valid lines than its capacity, no matter how many engines share it.
 */
TEST(SharedL2Cache, EngineStatsSumToArrayStatsAndCapacityHolds)
{
    constexpr unsigned kPes = 3;
    TinySharedL2 t(kPes);
    const std::size_t capacityLines =
        tinyGeometry().sizeBytes / tinyGeometry().lineBytes;

    // A deterministic mixed workload: every engine sweeps the whole
    // store, missing, refilling and re-touching lines.
    for (unsigned round = 0; round < 3; ++round) {
        for (unsigned pe = 0; pe < kPes; ++pe) {
            for (SimAddr base = 0; base < kMemBytes;
                 base += kLineBytes) {
                if (!t.shared.lookup(pe, base + 4 * pe))
                    t.refill(pe, base);
                ASSERT_LE(t.shared.array().validLineCount(),
                          capacityLines);
            }
        }
    }

    const StatGroup &arr = t.shared.array().stats();
    EXPECT_EQ(
        sumStat(t.shared, kPes, &SharedL2Cache::EngineStats::hits),
        arr.get("hits"));
    EXPECT_EQ(
        sumStat(t.shared, kPes, &SharedL2Cache::EngineStats::misses),
        arr.get("misses"));
    EXPECT_LE(t.shared.array().validLineCount(), capacityLines);
}

/** Engine A's refill hits for engine B, and is counted as the
 *  cross-engine hit that makes sharing worthwhile. */
TEST(SharedL2Cache, RefillByOneEngineHitsForAnother)
{
    TinySharedL2 t(2);

    EXPECT_FALSE(t.shared.lookup(0, 0));
    t.refill(0, 0);
    EXPECT_TRUE(t.shared.lookup(1, 4));
    EXPECT_EQ(t.shared.engineStats(1).crossHits, 1u);
    // The owner's own hit is not a cross hit.
    EXPECT_TRUE(t.shared.lookup(0, 8));
    EXPECT_EQ(t.shared.engineStats(0).crossHits, 0u);
}

/**
 * Writing through the L2 makes the writer's copy differ from the
 * other engines': the shared frame must become the writer's colored
 * line (divergence is monotone), the other engine misses and refills
 * its own copy, and each engine reads back its own bytes — the
 * value-preservation contract at the smallest scale.
 */
TEST(SharedL2Cache, WriteDivergesTheLineAndKeepsValuesPerEngine)
{
    TinySharedL2 t(2);
    const SimAddr base = 2048;

    t.refill(0, base);
    ASSERT_TRUE(t.shared.sharedFrame(base));
    const std::uint8_t newByte[1] = {0xAB};
    t.shared.writeRange(0, base + 12, newByte, 1, true);

    EXPECT_FALSE(t.shared.sharedFrame(base));
    EXPECT_EQ(t.shared.divergedLines(), 1u);
    EXPECT_EQ(t.shared.stats().get("shared_to_colored"), 1u);

    // Engine 1 no longer shares the frame: it misses and refills its
    // own (unmodified) copy, after which both colored copies coexist.
    EXPECT_FALSE(t.shared.lookup(1, base));
    t.refill(1, base);
    EXPECT_TRUE(t.shared.lookup(1, base));
    EXPECT_EQ(t.shared.readWordRaw(0, base + 12) & 0xFFu, 0xABu);
    EXPECT_EQ(t.shared.readWordRaw(1, base + 12),
              t.stores[1].read32(base + 12));
}

/** Dirty colored victims write back to the OWNER's store, even when
 *  another engine's fill triggered the eviction. */
TEST(SharedL2Cache, EvictionRoutesDirtyWritebackToOwnerStore)
{
    TinySharedL2 t(2);
    const SimAddr base = 0; // set 0

    // Engine 0: diverge line 0 (DMA-style flush), refill its colored
    // copy and dirty it.
    t.shared.flushLine(0, base);
    ASSERT_FALSE(t.shared.sharedFrame(base));
    t.refill(0, base);
    const std::uint8_t dirtyByte[1] = {0x5A};
    t.shared.writeRange(0, base + 0, dirtyByte, 1, true);

    // Engine 1 fills the set's other way, then evicts engine 0's
    // dirty line with a third line of the same set (2 KiB apart).
    t.refill(1, base);
    t.shared.flushLine(1, 2048);
    t.refill(1, 2048);
    t.shared.flushLine(1, 4096);
    t.refill(1, 4096);

    EXPECT_EQ(t.stores[0].read8(0), 0x5A);
    EXPECT_EQ(t.shared.stats().get("writebacks_to_mem"), 1u);
    EXPECT_GE(t.shared.engineStats(0).evictedByOther, 1u);
}

/** Shared frames are always clean: evicting one costs no writeback,
 *  and the loss is charged to the engine that installed it. */
TEST(SharedL2Cache, SharedFrameEvictionIsFreeAndCharged)
{
    TinySharedL2 t(2);

    // Three shared frames into the 2-way set 0: the third fill (by
    // engine 1) evicts engine 0's LRU frame.
    t.refill(0, 0);
    t.refill(0, 2048);
    t.refill(1, 4096);

    EXPECT_EQ(t.shared.stats().get("writebacks_to_mem"), 0u);
    EXPECT_EQ(t.shared.engineStats(0).evictedByOther, 1u);
    // The evicted frame is genuinely gone for everyone.
    EXPECT_FALSE(t.shared.contains(0, 0));
    EXPECT_FALSE(t.shared.contains(1, 0));
}

/** seedDivergence finds pre-existing store mismatches (control-plane
 *  faults) and colors those lines from the start. */
TEST(SharedL2Cache, SeedDivergenceColorsMismatchedLines)
{
    std::vector<mem::BackingStore> stores(2,
                                          mem::BackingStore(kMemBytes));
    for (unsigned pe = 0; pe < 2; ++pe)
        for (SimAddr a = 0; a < kMemBytes; a += 4)
            stores[pe].write32(a, a);
    stores[1].write8(300, 0xFF); // one corrupted byte in engine 1

    SharedL2Cache shared(tinyGeometry(), mem::CheckCodec::Parity,
                         kMemBytes, 2);
    shared.attach(0, &stores[0], nullptr);
    shared.attach(1, &stores[1], nullptr);
    shared.seedDivergence();

    EXPECT_EQ(shared.divergedLines(), 1u);
    EXPECT_EQ(shared.stats().get("seeded_diverged"), 1u);
    EXPECT_FALSE(shared.sharedFrame(300));
    EXPECT_TRUE(shared.sharedFrame(0));
}

/**
 * A control-plane publish is an in-place store to a line every engine
 * shares (the FIB root pointer): the write must diverge the line in
 * the bitmap, and a non-updating engine must keep reading its own
 * pre-update pointer — updates on one engine never leak into another
 * engine's control plane through the shared array.
 */
TEST(SharedL2Cache, CtrlPublishDivergesLineForNonUpdatingEngines)
{
    TinySharedL2 t(3);
    const SimAddr rootPtr = 1024; // the "FIB root pointer" word
    const std::uint32_t oldRoot = t.stores[0].read32(rootPtr);

    // Every engine has the control-plane line resident and shared.
    t.refill(0, 1024);
    EXPECT_TRUE(t.shared.lookup(1, rootPtr));
    EXPECT_TRUE(t.shared.lookup(2, rootPtr));
    ASSERT_TRUE(t.shared.sharedFrame(rootPtr));

    // Engine 0 publishes a new root: one 4-byte in-place store.
    const std::uint32_t newRoot = 0x1b70cafeu;
    std::uint8_t bytes[4];
    std::memcpy(bytes, &newRoot, 4);
    t.shared.writeRange(0, rootPtr, bytes, 4, true);

    EXPECT_FALSE(t.shared.sharedFrame(rootPtr));
    EXPECT_EQ(t.shared.divergedLines(), 1u);
    EXPECT_EQ(t.shared.readWordRaw(0, rootPtr), newRoot);

    // The non-updating engines lost the frame, refill their own
    // copies, and still see the old root — value preservation for the
    // control plane, not just packet data.
    EXPECT_FALSE(t.shared.lookup(1, rootPtr));
    t.refill(1, 1024);
    EXPECT_EQ(t.shared.readWordRaw(1, rootPtr), oldRoot);
    // Divergence is monotone: the line never becomes shared again.
    EXPECT_FALSE(t.shared.sharedFrame(rootPtr));
}

// --- MSHR merging at the port -----------------------------------------

/**
 * A hit on a shared frame whose DRAM transfer another engine started
 * folds into that transfer's MSHR: it cannot complete before the data
 * actually arrives, so the hitter waits for the in-flight miss.
 */
TEST(SharedL2Port, HitMergesIntoOtherEnginesInflightMiss)
{
    SharedL2Port port(/*hitService=*/2, /*missService=*/10,
                      /*mshrs=*/2);

    // Engine 0 misses line 0: its transfer occupies [0, 10).
    mem::L2LineUse miss{0, true, true};
    EXPECT_EQ(port.requestPort(0, 10, 1, 1, &miss, 1), 0);

    // Engine 1 hits the same line while the transfer is in flight
    // (its own window would be [2, 4)): it must wait until time 10.
    mem::L2LineUse hit{0, false, true};
    EXPECT_EQ(port.requestPort(1, 4, 1, 0, &hit, 1), 8);
    EXPECT_EQ(port.stats().get("mshr_merges"), 1u);
}

TEST(SharedL2Port, NoMergeForOwnTransferOrNonShareableLines)
{
    // The engine that started the transfer never merges with itself.
    SharedL2Port own(2, 10, 2);
    mem::L2LineUse miss{0, true, true};
    own.requestPort(0, 10, 1, 1, &miss, 1);
    mem::L2LineUse hit{0, false, true};
    EXPECT_EQ(own.requestPort(0, 4, 1, 0, &hit, 1), 0);
    EXPECT_EQ(own.stats().get("mshr_merges"), 0u);

    // Private-L2 lines are never shareable, so nothing ever merges —
    // the private chip's timing is untouched by the merge machinery.
    SharedL2Port priv(2, 10, 2);
    mem::L2LineUse pMiss{0, true, false};
    priv.requestPort(0, 10, 1, 1, &pMiss, 1);
    mem::L2LineUse pHit{0, false, false};
    EXPECT_EQ(priv.requestPort(1, 4, 1, 0, &pHit, 1), 0);
    EXPECT_EQ(priv.stats().get("mshr_merges"), 0u);
}

// --- chip-level value preservation ------------------------------------

/**
 * The heart of the shared-L2 design: sharing changes WHEN bytes move
 * (hit/miss pattern, port waits), never WHICH bytes an engine reads.
 * A golden chip run in shared mode must complete the same packets on
 * the same engines with identical marked values as the private run.
 */
TEST(SharedL2Chip, SharedAndPrivateComputeIdenticalValues)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig priv;
    priv.peCount = 4;
    priv.dispatch = DispatchPolicy::FlowHash;
    NpuConfig shared = priv;
    shared.l2 = L2Mode::Shared;

    const ChipRun a = runChipGolden(apps::appFactory("nat"), cfg, priv);
    const ChipRun b =
        runChipGolden(apps::appFactory("nat"), cfg, shared);

    ASSERT_EQ(a.completions.size(), b.completions.size());
    EXPECT_EQ(a.merged.packetsProcessed, b.merged.packetsProcessed);
    for (const auto &[seq, where] : a.completions) {
        const auto it = b.completions.find(seq);
        ASSERT_NE(it, b.completions.end()) << "seq " << seq;
        // Same engine, same processing slot on that engine...
        EXPECT_EQ(it->second, where) << "seq " << seq;
        // ...and bit-identical marked values for the packet.
        const auto diff = a.recorders[where.first].comparePacket(
            where.second, b.recorders[it->second.first],
            it->second.second);
        EXPECT_TRUE(diff.empty())
            << "seq " << seq << " first differing key: " << diff[0];
    }
    // Sharing actually engaged: engines hit on each other's refills.
    EXPECT_GT(b.chip.crossEngineHits, 0.0);
    EXPECT_EQ(a.chip.crossEngineHits, 0.0);
}

/**
 * The same value-preservation contract with the control plane churning
 * underneath: every engine applies its own copy of the update stream,
 * and the updated lines diverge rather than bleed across engines, so
 * shared-mode marked values still match the private run exactly.
 */
TEST(SharedL2Chip, SharedAndPrivateIdenticalUnderCtrlChurn)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.ctrl.rate = 100;
    NpuConfig priv;
    priv.peCount = 4;
    priv.dispatch = DispatchPolicy::FlowHash;
    NpuConfig shared = priv;
    shared.l2 = L2Mode::Shared;

    const ChipRun a = runChipGolden(apps::appFactory("lpm"), cfg, priv);
    const ChipRun b =
        runChipGolden(apps::appFactory("lpm"), cfg, shared);

    EXPECT_GT(a.merged.ctrlEventsApplied, 0u);
    EXPECT_EQ(a.merged.ctrlEventsApplied, b.merged.ctrlEventsApplied);
    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (const auto &[seq, where] : a.completions) {
        const auto it = b.completions.find(seq);
        ASSERT_NE(it, b.completions.end()) << "seq " << seq;
        EXPECT_EQ(it->second, where) << "seq " << seq;
        const auto diff = a.recorders[where.first].comparePacket(
            where.second, b.recorders[it->second.first],
            it->second.second);
        EXPECT_TRUE(diff.empty())
            << "seq " << seq << " first differing key: " << diff[0];
    }
}

/** A one-engine chip has nobody to share with: l2=shared must be the
 *  private configuration bit for bit, cross-engine metrics zero. */
TEST(SharedL2Chip, OneEngineSharedMatchesPrivateBitForBit)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig priv; // 1 PE
    NpuConfig shared = priv;
    shared.l2 = L2Mode::Shared;

    const ChipExperimentResult a =
        runChipExperiment(apps::appFactory("route"), cfg, priv);
    const ChipExperimentResult b =
        runChipExperiment(apps::appFactory("route"), cfg, shared);

    EXPECT_EQ(sweep::experimentResultJson(a.core),
              sweep::experimentResultJson(b.core));
    EXPECT_EQ(a.faultyChip.makespanCycles, b.faultyChip.makespanCycles);
    EXPECT_EQ(a.faultyChip.chipEdf, b.faultyChip.chipEdf);
    for (const ChipMetrics *m : {&b.goldenChip, &b.faultyChip}) {
        EXPECT_EQ(m->crossEngineHits, 0.0);
        EXPECT_EQ(m->l2EvictionsByOther, 0.0);
        EXPECT_EQ(m->mshrMerges, 0.0);
    }
}

/** Shared-mode runs are deterministic: repeating the experiment
 *  reproduces every metric, merges and cross-hits included. */
TEST(SharedL2Chip, SharedModeRepeatRunsAreByteIdentical)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.mshrs = 2;
    npuCfg.l2 = L2Mode::Shared;

    const ChipExperimentResult a =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);
    const ChipExperimentResult b =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);

    EXPECT_EQ(sweep::experimentResultJson(a.core),
              sweep::experimentResultJson(b.core));
    EXPECT_EQ(a.faultyChip.crossEngineHits,
              b.faultyChip.crossEngineHits);
    EXPECT_EQ(a.faultyChip.mshrMerges, b.faultyChip.mshrMerges);
    EXPECT_EQ(a.faultyChip.l2EvictionsByOther,
              b.faultyChip.l2EvictionsByOther);
    EXPECT_EQ(a.faultyChip.l2PortWaitCycles,
              b.faultyChip.l2PortWaitCycles);
}

/** Shared-L2 sweep cells are byte-identical across worker counts:
 *  the merge machinery introduces no scheduling nondeterminism. */
TEST(SharedL2Chip, SweepCellsByteIdenticalAcrossWorkerCounts)
{
    sweep::SweepSpec spec;
    spec.apps = {"route"};
    spec.points = {{0.5, false}};
    spec.schemes = {mem::RecoveryScheme::TwoStrike};
    spec.peCounts = {2};
    spec.mshrs = {2};
    spec.l2Modes = {L2Mode::Private, L2Mode::Shared};
    spec.packets = 200;
    spec.trials = 2;

    const sweep::SweepOutcome serial = sweep::runSweep(spec, 1);
    const sweep::SweepOutcome parallel = sweep::runSweep(spec, 4);
    EXPECT_EQ(sweep::renderJson(serial, false),
              sweep::renderJson(parallel, false));
    ASSERT_EQ(serial.cells.size(), 2u);
    EXPECT_EQ(serial.cells[0].cell.l2, L2Mode::Private);
    EXPECT_EQ(serial.cells[1].cell.l2, L2Mode::Shared);
    EXPECT_GT(serial.cells[1].npuGolden.crossEngineHits, 0.0);
    EXPECT_EQ(serial.cells[0].npuGolden.crossEngineHits, 0.0);
}

// --- flow-rehash dispatch properties ----------------------------------

/**
 * Fuzzed affinity: across 1000 generated headers, every packet of a
 * 5-tuple flow lands on the same engine; with rehash enabled a dead
 * pinned engine deterministically re-homes the whole flow to one
 * alive engine instead of dropping it.
 */
TEST(NpuDispatchRehash, FlowsStayTogetherAndRehashDeterministically)
{
    net::TraceConfig tc;
    tc.numFlows = 64;
    net::TraceGenerator gen(tc);
    const auto trace = gen.generate(1000);

    constexpr unsigned kPes = 8;
    const std::vector<unsigned> depths(kPes, 0);
    const std::vector<char> allAlive(kPes, 1);
    std::vector<char> someDead(kPes, 1);
    someDead[2] = someDead[5] = 0;

    Dispatcher pinned(DispatchPolicy::FlowHash, kPes, false);
    Dispatcher rehash(DispatchPolicy::FlowHash, kPes, true);

    // flow key -> engine chosen, per liveness scenario
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t,
                        std::uint16_t, std::uint8_t>,
             std::pair<int, int>>
        flowPe;
    for (const net::Packet &pkt : trace) {
        const int healthy = rehash.choose(pkt, depths, allAlive);
        const int degraded = rehash.choose(pkt, depths, someDead);
        ASSERT_GE(healthy, 0);
        ASSERT_GE(degraded, 0);
        // Rehash never picks a dead engine, and agrees with the
        // pinned policy whenever the pinned engine is alive.
        EXPECT_TRUE(someDead[static_cast<unsigned>(degraded)]);
        EXPECT_EQ(healthy,
                  static_cast<int>(flowHash(pkt) % kPes));
        const int pinnedChoice = pinned.choose(pkt, depths, someDead);
        if (pinnedChoice >= 0) {
            EXPECT_EQ(degraded, pinnedChoice);
        }

        const auto key = std::make_tuple(pkt.ip.src, pkt.ip.dst,
                                         pkt.srcPort, pkt.dstPort,
                                         pkt.ip.protocol);
        const auto [it, fresh] = flowPe.emplace(
            key, std::make_pair(healthy, degraded));
        if (!fresh) {
            EXPECT_EQ(it->second.first, healthy);
            EXPECT_EQ(it->second.second, degraded);
        }
    }

    // Without rehash, a dead pinned engine drops the flow (-1); with
    // rehash the flow moves. A fully-dead chip still has no home.
    bool sawDeadPin = false;
    const std::vector<char> allDead(kPes, 0);
    for (const net::Packet &pkt : trace) {
        if (!someDead[flowHash(pkt) % kPes]) {
            sawDeadPin = true;
            EXPECT_EQ(pinned.choose(pkt, depths, someDead), -1);
        }
        EXPECT_EQ(rehash.choose(pkt, depths, allDead), -1);
    }
    EXPECT_TRUE(sawDeadPin) << "trace never hit a dead engine";
}

// --- completion uniqueness under backpressure -------------------------

/**
 * Backpressure re-enqueues arrivals instead of dropping them; the
 * chip must still complete every trace sequence exactly once (the
 * chip model asserts this internally — this drives the re-enqueue
 * path and checks the external contract).
 */
TEST(SharedL2Chip, BackpressureCompletesEverySequenceExactlyOnce)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.numPackets = 400;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.queueCapacity = 1; // maximal re-enqueue pressure
    npuCfg.l2 = L2Mode::Shared;

    const ChipRun r =
        runChipGolden(apps::appFactory("crc"), cfg, npuCfg);
    EXPECT_GT(r.chip.backpressureStalls, 0.0);
    ASSERT_EQ(r.completions.size(), 400u);
    // std::map keys are unique by construction; the real check is
    // that the 400 completions are exactly sequences 0..399.
    std::uint64_t expected = 0;
    for (const auto &[seq, where] : r.completions) {
        EXPECT_EQ(seq, expected);
        ++expected;
        EXPECT_LT(where.first, 2u);
    }
}
