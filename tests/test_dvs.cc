/**
 * @file
 * Tests of the voltage-overdrive (DVS) baseline model.
 */

#include <gtest/gtest.h>

#include "energy/dvs.hh"

using namespace clumsy::energy;

TEST(Dvs, NominalPointIsIdentity)
{
    EXPECT_NEAR(frequencyAtVoltage(1.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(energyScaleAtVoltage(1.0), 1.0);
}

TEST(Dvs, FrequencyMonotonicInVoltage)
{
    double prev = 0.0;
    for (double v = 0.5; v <= 1.6; v += 0.1) {
        const double f = frequencyAtVoltage(v);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(Dvs, VoltageInverseRoundTrip)
{
    for (const double fr : {0.5, 0.8, 1.0, 1.2, 1.4}) {
        const double v = voltageForFrequency(fr);
        EXPECT_NEAR(frequencyAtVoltage(v), fr, 1e-9);
    }
}

TEST(Dvs, OverdriveCostsQuadratically)
{
    const double v = voltageForFrequency(1.3);
    EXPECT_GT(v, 1.0);
    EXPECT_GT(energyScaleAtVoltage(v), 1.0);
    EXPECT_NEAR(energyScaleAtVoltage(v), v * v, 1e-12);
}

TEST(Dvs, UndervoltingSavesEnergy)
{
    const double v = voltageForFrequency(0.5);
    EXPECT_LT(v, 1.0);
    EXPECT_LT(energyScaleAtVoltage(v), 1.0);
}

TEST(Dvs, AlphaPowerCeilingBelowClumsyRange)
{
    // The headline contrast: the paper's 2x and 4x cache clocks are
    // unreachable by overdrive within a sane voltage ceiling.
    const DvsParams params;
    EXPECT_LT(frequencyAtVoltage(params.vMax, params), 2.0);
}

TEST(DvsDeath, Validation)
{
    EXPECT_DEATH(frequencyAtVoltage(0.3), "threshold");
    EXPECT_EXIT(voltageForFrequency(4.0),
                ::testing::ExitedWithCode(1), "exceeds");
}
