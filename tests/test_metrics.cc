/**
 * @file
 * Tests of the fallibility and energy-delay-fallibility metrics.
 */

#include <gtest/gtest.h>

#include "core/metrics.hh"

using namespace clumsy::core;

namespace
{

RunMetrics
sampleRun()
{
    RunMetrics m;
    m.packetsAttempted = 100;
    m.packetsProcessed = 100;
    m.packetsWithError = 5;
    m.cyclesPerPacket = 1000.0;
    m.energyPerPacketPj = 2e6;
    return m;
}

} // namespace

TEST(Metrics, ErrorProbAndFallibility)
{
    const RunMetrics m = sampleRun();
    EXPECT_DOUBLE_EQ(anyErrorProb(m), 0.05);
    EXPECT_DOUBLE_EQ(fallibility(m), 1.05);
}

TEST(Metrics, CleanRunHasUnitFallibility)
{
    RunMetrics m = sampleRun();
    m.packetsWithError = 0;
    EXPECT_DOUBLE_EQ(fallibility(m), 1.0);
}

TEST(Metrics, FatalProbIsPerPacketHazard)
{
    RunMetrics m = sampleRun();
    EXPECT_DOUBLE_EQ(fatalProb(m), 0.0);
    m.fatal = true;
    m.packetsProcessed = 250;
    EXPECT_DOUBLE_EQ(fatalProb(m), 1.0 / 250.0);
    m.packetsProcessed = 0;
    EXPECT_DOUBLE_EQ(fatalProb(m), 1.0);
}

TEST(Metrics, EdfProductDefaultWeights)
{
    const RunMetrics m = sampleRun();
    // k=1, m=2, n=2.
    const double expect = 2e6 * 1000.0 * 1000.0 * 1.05 * 1.05;
    EXPECT_NEAR(edfProduct(m), expect, expect * 1e-12);
}

TEST(Metrics, EdfProductCustomWeights)
{
    const RunMetrics m = sampleRun();
    const MetricWeights w{1.0, 1.0, 0.0}; // plain energy-delay
    EXPECT_NEAR(edfProduct(m, w), 2e6 * 1000.0, 1.0);
}

TEST(Metrics, RelativeEdfNormalizes)
{
    const RunMetrics base = sampleRun();
    RunMetrics twice = base;
    twice.energyPerPacketPj *= 2.0;
    EXPECT_NEAR(relativeEdf(twice, base), 2.0, 1e-12);
    EXPECT_NEAR(relativeEdf(base, base), 1.0, 1e-12);
}

TEST(Metrics, FallibilityPenalizesQuadratically)
{
    const RunMetrics clean = [] {
        RunMetrics m = sampleRun();
        m.packetsWithError = 0;
        return m;
    }();
    RunMetrics faulty = clean;
    faulty.packetsWithError = 10; // fallibility 1.1
    EXPECT_NEAR(relativeEdf(faulty, clean), 1.1 * 1.1, 1e-9);
}

TEST(MetricsDeath, EmptyRunRejected)
{
    RunMetrics m;
    EXPECT_DEATH(edfProduct(m), "empty run");
}
