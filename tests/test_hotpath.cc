/**
 * @file
 * Byte-identity tests of the hot-path rearchitecture's two seams.
 *
 * The rearchitecture must not move a single modeled number:
 *
 *  - The devirtualized private-L2 fast path (the template seam in
 *    mem/hierarchy.cc) against the virtual-dispatch reference arm
 *    (HierarchyConfig::forceGenericL2), on every workload, golden and
 *    faulty.
 *
 *  - The batched chip dispatch loop (NpuConfig::dispatchBurst = 0,
 *    unbounded) against the legacy one-dispatch-per-pass loop
 *    (dispatchBurst = 1) and intermediate burst caps, across dispatch
 *    policies, queue-full modes and arrival pacing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/logging.hh"
#include "core/experiment.hh"
#include "npu/chip.hh"
#include "npu/config.hh"

using namespace clumsy;

namespace
{

/** Every modeled RunMetrics quantity, exactly equal. */
void
expectSameMetrics(const core::RunMetrics &a, const core::RunMetrics &b)
{
    EXPECT_EQ(a.packetsAttempted, b.packetsAttempted);
    EXPECT_EQ(a.packetsProcessed, b.packetsProcessed);
    EXPECT_EQ(a.packetsWithError, b.packetsWithError);
    EXPECT_EQ(a.fatal, b.fatal);
    EXPECT_EQ(a.fatalReason, b.fatalReason);
    EXPECT_EQ(a.cyclesPerPacket, b.cyclesPerPacket);
    EXPECT_EQ(a.energyPerPacketPj, b.energyPerPacketPj);
    EXPECT_EQ(a.totalEnergyPj, b.totalEnergyPj);
    EXPECT_EQ(a.l1dEnergyPj, b.l1dEnergyPj);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.dcacheAccesses, b.dcacheAccesses);
    EXPECT_EQ(a.dcacheMissRate, b.dcacheMissRate);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.parityTrips, b.parityTrips);
    EXPECT_EQ(a.eccCorrections, b.eccCorrections);
    EXPECT_EQ(a.freqSwitches, b.freqSwitches);
    EXPECT_EQ(a.ctrlEventsApplied, b.ctrlEventsApplied);
    EXPECT_EQ(a.errorsByType, b.errorsByType);
}

void
expectSameChipMetrics(const npu::ChipMetrics &a,
                      const npu::ChipMetrics &b)
{
    EXPECT_EQ(a.makespanCycles, b.makespanCycles);
    EXPECT_EQ(a.throughputPps, b.throughputPps);
    EXPECT_EQ(a.loadImbalance, b.loadImbalance);
    EXPECT_EQ(a.queueOccMean, b.queueOccMean);
    EXPECT_EQ(a.queueOccMax, b.queueOccMax);
    EXPECT_EQ(a.dropsQueueFull, b.dropsQueueFull);
    EXPECT_EQ(a.dropsDeadPe, b.dropsDeadPe);
    EXPECT_EQ(a.backpressureStalls, b.backpressureStalls);
    EXPECT_EQ(a.l2PortWaits, b.l2PortWaits);
    EXPECT_EQ(a.l2PortWaitCycles, b.l2PortWaitCycles);
    EXPECT_EQ(a.crossEngineHits, b.crossEngineHits);
    EXPECT_EQ(a.mshrMerges, b.mshrMerges);
    EXPECT_EQ(a.chipEdf, b.chipEdf);
    EXPECT_EQ(a.peUtilization, b.peUtilization);
    EXPECT_EQ(a.pePackets, b.pePackets);
    EXPECT_EQ(a.peL2Hits, b.peL2Hits);
    EXPECT_EQ(a.peL2Misses, b.peL2Misses);
}

void
expectSameStream(const npu::ChipStreamResult &a,
                 const npu::ChipStreamResult &b)
{
    EXPECT_EQ(a.valueDigest, b.valueDigest);
    EXPECT_EQ(a.peDigests, b.peDigests);
    expectSameMetrics(a.merged, b.merged);
    expectSameChipMetrics(a.chip, b.chip);
}

} // namespace

// ---------------------------------------------------------------------
// Devirtualized fast path vs the virtual reference arm.
// ---------------------------------------------------------------------

TEST(HotPath, GenericL2ArmMatchesFastPathOnEveryWorkload)
{
    setQuiet(true);
    std::vector<std::string> names = apps::allAppNames();
    for (const std::string &n : apps::extensionAppNames())
        names.push_back(n);
    ASSERT_EQ(names.size(), 10u);
    for (const std::string &app : names) {
        core::ExperimentConfig fast;
        fast.numPackets = 200;
        core::ExperimentConfig ref = fast;
        ref.processor.hierarchy.forceGenericL2 = true;
        const core::GoldenRecord a =
            core::runGolden(apps::appFactory(app), fast);
        const core::GoldenRecord b =
            core::runGolden(apps::appFactory(app), ref);
        SCOPED_TRACE(app);
        EXPECT_EQ(a.recorder.digest(), b.recorder.digest());
        EXPECT_EQ(a.recorder.packetCount(), b.recorder.packetCount());
        expectSameMetrics(a.metrics, b.metrics);
    }
}

TEST(HotPath, GenericL2ArmMatchesFastPathFaulty)
{
    setQuiet(true);
    core::ExperimentConfig fast;
    fast.numPackets = 300;
    fast.cr = 0.45;
    fast.faultScale = 50.0; // make sure faults actually land
    fast.scheme = mem::RecoveryScheme::TwoStrike;
    core::ExperimentConfig ref = fast;
    ref.processor.hierarchy.forceGenericL2 = true;
    const core::GoldenRecord golden =
        core::runGolden(apps::appFactory("route"), fast);
    const core::RunMetrics a =
        core::runFaultyTrial(apps::appFactory("route"), fast, 0, golden);
    const core::RunMetrics b =
        core::runFaultyTrial(apps::appFactory("route"), ref, 0, golden);
    expectSameMetrics(a, b);
    EXPECT_GT(a.faultsInjected, 0u); // the arms actually took faults
}

TEST(HotPath, SharedL2UsesVirtualSeamUnchanged)
{
    // l2=shared never enters the devirtualized path; forcing the
    // generic arm there must be a no-op in every byte.
    setQuiet(true);
    core::ExperimentConfig fast;
    fast.numPackets = 600;
    core::ExperimentConfig ref = fast;
    ref.processor.hierarchy.forceGenericL2 = true;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.l2 = npu::L2Mode::Shared;
    npuCfg.mshrs = 2;
    const npu::ChipStreamResult a =
        npu::runChipStream(apps::appFactory("nat"), fast, npuCfg);
    const npu::ChipStreamResult b =
        npu::runChipStream(apps::appFactory("nat"), ref, npuCfg);
    expectSameStream(a, b);
}

// ---------------------------------------------------------------------
// Batched dispatch vs the legacy per-arrival loop.
// ---------------------------------------------------------------------

namespace
{

/** Run one chip config at dispatchBurst 1 (legacy), then at caps
 *  {2, 8, 0} and demand byte-identical results. */
void
expectBurstInvariant(const std::string &app,
                     const core::ExperimentConfig &cfg,
                     npu::NpuConfig npuCfg, bool golden)
{
    npuCfg.dispatchBurst = 1;
    const npu::ChipStreamResult legacy =
        npu::runChipStream(apps::appFactory(app), cfg, npuCfg, golden, 0);
    for (const unsigned burst : {2u, 8u, 0u}) {
        npuCfg.dispatchBurst = burst;
        SCOPED_TRACE("burst=" + std::to_string(burst));
        const npu::ChipStreamResult got = npu::runChipStream(
            apps::appFactory(app), cfg, npuCfg, golden, 0);
        expectSameStream(legacy, got);
    }
}

} // namespace

TEST(HotPath, BatchedDispatchMatchesLegacyFlowHash)
{
    setQuiet(true);
    core::ExperimentConfig cfg;
    cfg.numPackets = 1500;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
    npuCfg.mshrs = 4;
    expectBurstInvariant("nat", cfg, npuCfg, /*golden=*/true);
}

TEST(HotPath, BatchedDispatchMatchesLegacyRoundRobinPaced)
{
    // Paced arrivals: bursts end at the pacing horizon, engines drain
    // between them — the horizon bookkeeping must agree exactly.
    setQuiet(true);
    core::ExperimentConfig cfg;
    cfg.numPackets = 1200;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 3;
    npuCfg.dispatch = npu::DispatchPolicy::RoundRobin;
    npuCfg.arrivalGapCycles = 400;
    expectBurstInvariant("route", cfg, npuCfg, /*golden=*/true);
}

TEST(HotPath, BatchedDispatchMatchesLegacyShortestQueueDrop)
{
    // Tiny queues + drop mode: the burst loop's full-queue branch and
    // the incremental depth bookkeeping both get exercised hard.
    setQuiet(true);
    core::ExperimentConfig cfg;
    cfg.numPackets = 1500;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = npu::DispatchPolicy::ShortestQueue;
    npuCfg.queueCapacity = 2;
    npuCfg.dropWhenFull = true;
    expectBurstInvariant("session", cfg, npuCfg, /*golden=*/true);
}

TEST(HotPath, BatchedDispatchMatchesLegacyBackpressure)
{
    // Backpressure mode: arrivals stall and engines step inside the
    // dispatch loop — the trickiest interleaving to keep identical.
    setQuiet(true);
    core::ExperimentConfig cfg;
    cfg.numPackets = 1200;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
    npuCfg.queueCapacity = 2;
    expectBurstInvariant("nat", cfg, npuCfg, /*golden=*/true);
}

TEST(HotPath, BatchedDispatchMatchesLegacyFaultyWithDeaths)
{
    // Faulty chip at low Cr: engines can die mid-run, exercising the
    // dead-engine drop path of both dispatch loops.
    setQuiet(true);
    core::ExperimentConfig cfg;
    cfg.numPackets = 1000;
    cfg.cr = 0.45;
    cfg.scheme = mem::RecoveryScheme::NoDetection;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
    expectBurstInvariant("route", cfg, npuCfg, /*golden=*/false);
}
