/**
 * @file
 * Tests of the Hamming SEC-DED codec and its integration into the
 * hierarchy (inline single-bit correction, double-bit strike path).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "energy/chip_energy.hh"
#include "fault/injector.hh"
#include "mem/hierarchy.hh"
#include "mem/secded.hh"

using namespace clumsy;
using namespace clumsy::mem;

TEST(Secded, CleanWordDecodesOk)
{
    Rng rng(41);
    for (int i = 0; i < 2000; ++i) {
        const auto w = static_cast<std::uint32_t>(rng.next());
        const auto check = secded::encode(w);
        const auto dec = secded::decode(w, check);
        EXPECT_EQ(dec.status, secded::DecodeStatus::Ok);
        EXPECT_EQ(dec.data, w);
    }
}

TEST(Secded, EverySingleBitFlipCorrected)
{
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const auto w = static_cast<std::uint32_t>(rng.next());
        const auto check = secded::encode(w);
        for (unsigned b = 0; b < 32; ++b) {
            const auto dec =
                secded::decode(w ^ (std::uint32_t{1} << b), check);
            ASSERT_EQ(dec.status, secded::DecodeStatus::Corrected)
                << "bit " << b;
            ASSERT_EQ(dec.data, w) << "bit " << b;
        }
    }
}

TEST(Secded, CheckBitFlipCorrected)
{
    const std::uint32_t w = 0xdeadbeef;
    const auto check = secded::encode(w);
    for (unsigned b = 0; b < secded::kCheckBits; ++b) {
        const auto dec = secded::decode(
            w, static_cast<std::uint8_t>(check ^ (1u << b)));
        ASSERT_EQ(dec.status, secded::DecodeStatus::Corrected);
        ASSERT_EQ(dec.data, w);
    }
}

class SecdedDoubleFlips : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecdedDoubleFlips, AdjacentPairsDetected)
{
    // The injector's 2-bit faults flip adjacent data bits; SEC-DED
    // must flag every such pair (this is exactly the pattern a single
    // parity bit misses).
    const unsigned pos = GetParam();
    Rng rng(43);
    const auto w = static_cast<std::uint32_t>(rng.next());
    const auto check = secded::encode(w);
    const std::uint32_t mask =
        (std::uint32_t{1} << pos) | (std::uint32_t{1} << ((pos + 1) % 32));
    const auto dec = secded::decode(w ^ mask, check);
    EXPECT_EQ(dec.status, secded::DecodeStatus::DoubleError);
}

INSTANTIATE_TEST_SUITE_P(Positions, SecdedDoubleFlips,
                         ::testing::Range(0u, 32u));

TEST(Secded, AllDoubleFlipsDetected)
{
    // Not just adjacent ones: every 2-of-32 data pattern.
    const std::uint32_t w = 0x13572468;
    const auto check = secded::encode(w);
    for (unsigned a = 0; a < 32; ++a) {
        for (unsigned b = a + 1; b < 32; ++b) {
            const std::uint32_t mask =
                (std::uint32_t{1} << a) | (std::uint32_t{1} << b);
            const auto dec = secded::decode(w ^ mask, check);
            ASSERT_EQ(dec.status, secded::DecodeStatus::DoubleError)
                << a << "," << b;
        }
    }
}

namespace
{

struct EccRig
{
    HierarchyConfig config;
    BackingStore store{1u << 20};
    fault::FaultInjector injector;
    energy::EnergyModel model;
    energy::EnergyAccount account;
    MemHierarchy hier;

    explicit EccRig(double faultScale, RecoveryScheme scheme)
        : config([scheme] {
              HierarchyConfig c;
              c.scheme = scheme;
              c.codec = CheckCodec::Secded;
              return c;
          }()),
          injector(fault::FaultModel(
                       [faultScale] {
                           fault::FaultModelParams p;
                           p.scale = faultScale;
                           return p;
                       }()),
                   11),
          model(energy::EnergyParams{}, config.l1d, config.l1i,
                config.l2),
          account(&model),
          hier(config, &store, &injector, &account)
    {
    }
};

} // namespace

TEST(SecdedHierarchy, SingleBitFaultsCorrectedInline)
{
    EccRig rig(2e3, RecoveryScheme::TwoStrike);
    rig.hier.setCycleTime(0.25);
    rig.hier.write(0x1000, 4, 0x0f0f0f0f);
    unsigned wrong = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rig.hier.read(0x1000, 4).value != 0x0f0f0f0f)
            ++wrong;
    }
    EXPECT_GT(rig.hier.stats().get("ecc_corrections"), 100u);
    // Corrections happen inline: far fewer strike invalidations than
    // corrections.
    EXPECT_LT(rig.hier.stats().get("strike_invalidations"),
              rig.hier.stats().get("ecc_corrections") / 10);
    // Triple-bit faults miscorrect under SEC-DED (the syndrome names
    // a wrong single bit), so a handful of wrong values remain.
    EXPECT_LE(wrong, 5u);
}

TEST(SecdedHierarchy, EccCostsMoreEnergyThanParity)
{
    const energy::EnergyModel model(
        energy::EnergyParams{}, CacheGeometry{4096, 1, 32, 22},
        CacheGeometry{4096, 1, 32, 22},
        CacheGeometry{131072, 4, 128, 15});
    EXPECT_GT(model.l1dReadPj(1.0, energy::Protection::Secded),
              model.l1dReadPj(1.0, energy::Protection::Parity));
    EXPECT_GT(model.l1dWritePj(1.0, energy::Protection::Secded),
              model.l1dWritePj(1.0, energy::Protection::Parity));
}

TEST(SubBlockRecovery, RepairsWordWithoutDroppingLine)
{
    HierarchyConfig cfg;
    cfg.scheme = RecoveryScheme::OneStrike;
    cfg.subBlockRecovery = true;
    BackingStore store{1u << 20};
    fault::FaultModelParams params;
    params.scale = 500.0;
    fault::FaultInjector injector{fault::FaultModel(params), 12};
    energy::EnergyModel model(energy::EnergyParams{}, cfg.l1d, cfg.l1i,
                              cfg.l2);
    energy::EnergyAccount account(&model);
    MemHierarchy hier(cfg, &store, &injector, &account);

    hier.setCycleTime(0.25);
    hier.write(0x2000, 4, 0x11111111); // word A
    hier.write(0x2004, 4, 0x22222222); // word B, same line, dirty
    hier.flushRange(0x2000, 8);        // both clean in L2 now
    unsigned trips = 0;
    for (int i = 0; i < 50000 && trips == 0; ++i) {
        const auto acc = hier.read(0x2000, 4);
        trips += acc.parityTrips;
    }
    ASSERT_GT(trips, 0u);
    EXPECT_GT(hier.stats().get("subblock_refetches"), 0u);
    EXPECT_EQ(hier.stats().get("strike_invalidations") -
                  hier.stats().get("subblock_refetches"),
              0u);
    // The line survived: word B is still present and correct.
    EXPECT_TRUE(hier.l1d().contains(0x2004));
    EXPECT_EQ(hier.peekWord(0x2004), 0x22222222u);
}
