/**
 * @file
 * Tests of the chip step loop's indexed event queue
 * (npu/event_queue.hh) in isolation: ordering with the PE-index
 * tie-break, decrease-key and increase-key, membership bookkeeping
 * under erase, and equivalence of heap-ordered stepping against the
 * reference linear min-scan on a randomized 1000-event trace.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/random.hh"
#include "npu/event_queue.hh"

using clumsy::Quanta;
using clumsy::Rng;
using clumsy::npu::EngineEventQueue;

TEST(EngineEventQueue, OrdersByKeyThenPeIndex)
{
    EngineEventQueue q(4);
    q.push(2, 30);
    q.push(0, 50);
    q.push(3, 30);
    q.push(1, 10);

    EXPECT_EQ(q.top(), 1u);
    EXPECT_EQ(q.topKey(), 10);
    q.erase(1);
    // Equal keys: the lowest engine id wins, exactly like the linear
    // scan's strict less-than that never replaces on a tie.
    EXPECT_EQ(q.top(), 2u);
    q.erase(2);
    EXPECT_EQ(q.top(), 3u);
    q.erase(3);
    EXPECT_EQ(q.top(), 0u);
    q.erase(0);
    EXPECT_TRUE(q.empty());
}

TEST(EngineEventQueue, DecreaseKeyLiftsAnEngineToTheTop)
{
    EngineEventQueue q(3);
    q.push(0, 100);
    q.push(1, 200);
    q.push(2, 300);
    EXPECT_EQ(q.top(), 0u);

    q.update(2, 50); // decrease-key
    EXPECT_EQ(q.top(), 2u);
    EXPECT_EQ(q.topKey(), 50);
    EXPECT_EQ(q.keyOf(2), 50);
}

TEST(EngineEventQueue, IncreaseKeySinksTheTop)
{
    EngineEventQueue q(3);
    q.push(0, 10);
    q.push(1, 20);
    q.push(2, 30);

    q.update(0, 25); // increase-key: engine 0 sinks below engine 1
    EXPECT_EQ(q.top(), 1u);
    q.erase(1);
    EXPECT_EQ(q.top(), 0u);
    q.erase(0);
    EXPECT_EQ(q.top(), 2u);
}

TEST(EngineEventQueue, EraseKeepsMembershipAndOrderConsistent)
{
    EngineEventQueue q(5);
    for (unsigned pe = 0; pe < 5; ++pe)
        q.push(pe, static_cast<Quanta>(10 * (5 - pe)));
    EXPECT_EQ(q.size(), 5u);
    EXPECT_TRUE(q.contains(2));

    q.erase(2); // middle element
    EXPECT_FALSE(q.contains(2));
    EXPECT_EQ(q.size(), 4u);

    // Remaining engines drain in ascending key order: keys were
    // 50, 40, (30 erased), 20, 10 for engines 0..4.
    EXPECT_EQ(q.top(), 4u);
    q.erase(4);
    EXPECT_EQ(q.top(), 3u);
    q.erase(3);
    EXPECT_EQ(q.top(), 1u);
    q.erase(1);
    EXPECT_EQ(q.top(), 0u);
    q.erase(0);
    EXPECT_TRUE(q.empty());

    // An erased engine can rejoin with a fresh key.
    q.push(2, 7);
    EXPECT_EQ(q.top(), 2u);
    EXPECT_EQ(q.topKey(), 7);
}

namespace
{

/** The step loop's original selection: linear min-scan by (key, id). */
int
scanMin(const std::vector<std::optional<Quanta>> &keys)
{
    int best = -1;
    Quanta bestKey = 0;
    for (unsigned pe = 0; pe < keys.size(); ++pe) {
        if (!keys[pe])
            continue;
        if (best < 0 || *keys[pe] < bestKey) {
            best = static_cast<int>(pe);
            bestKey = *keys[pe];
        }
    }
    return best;
}

} // namespace

/**
 * Heap-ordered stepping must match linear-scan stepping event for
 * event: 1000 randomized operations (push absent engines, re-key or
 * erase present ones) against a 16-engine model, checking the chosen
 * top after every mutation. Keys repeat often (drawn from a small
 * range) so the PE-index tie-break is exercised constantly.
 */
TEST(EngineEventQueue, MatchesLinearScanOnRandomizedTrace)
{
    constexpr unsigned kEngines = 16;
    EngineEventQueue q(kEngines);
    std::vector<std::optional<Quanta>> model(kEngines);
    Rng rng(0xc1a5 /* deterministic trace */);

    for (int event = 0; event < 1000; ++event) {
        const unsigned pe =
            static_cast<unsigned>(rng.below(kEngines));
        const auto key = static_cast<Quanta>(rng.below(64));
        const std::uint64_t op = rng.below(4);
        if (!model[pe]) {
            q.push(pe, key);
            model[pe] = key;
        } else if (op == 0) {
            q.erase(pe);
            model[pe].reset();
        } else {
            q.update(pe, key);
            model[pe] = key;
        }

        const int expected = scanMin(model);
        ASSERT_EQ(q.empty(), expected < 0) << "event " << event;
        if (expected >= 0) {
            ASSERT_EQ(q.top(), static_cast<unsigned>(expected))
                << "event " << event;
            ASSERT_EQ(q.topKey(), *model[expected])
                << "event " << event;
        }
    }
}
