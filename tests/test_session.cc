/**
 * @file
 * Tests of the stateful session workload: the bounded SessionTable
 * (install, hit, counters, timeout eviction, probe-exhaustion drops,
 * host-mirror agreement) and the session app under the golden-vs-
 * faulty harness (divergence, determinism, chip byte-identity).
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/session.hh"
#include "apps/tables.hh"
#include "core/experiment.hh"
#include "core/processor.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "sweep/sink.hh"

using namespace clumsy;
using apps::SessionTable;
using core::ClumsyProcessor;

namespace
{

SessionTable::FlowKey
key(std::uint32_t n)
{
    SessionTable::FlowKey k;
    k.src = 0x0a000000u + n;
    k.dst = 0xc0a80000u + n;
    k.srcPort = static_cast<std::uint16_t>(1000 + n);
    k.dstPort = 80;
    k.proto = 6;
    return k;
}

core::AppFactory
sessionFactory(apps::SessionParams params = {})
{
    return [params] {
        return std::make_unique<apps::SessionApp>(params);
    };
}

} // namespace

TEST(SessionTable, InstallHitAndCounters)
{
    ClumsyProcessor proc;
    SessionTable table(proc, 64, 1000);

    const auto first = table.lookup(proc, key(1), 1);
    ASSERT_NE(first.slot, SessionTable::kNoSlot);
    EXPECT_TRUE(first.created);
    EXPECT_FALSE(first.evicted);

    // Same 5-tuple later: same slot, no fresh install.
    const auto again = table.lookup(proc, key(1), 5);
    EXPECT_EQ(again.slot, first.slot);
    EXPECT_FALSE(again.created);

    // A different flow lands elsewhere.
    const auto other = table.lookup(proc, key(2), 6);
    ASSERT_NE(other.slot, SessionTable::kNoSlot);
    EXPECT_NE(other.slot, first.slot);
    EXPECT_TRUE(other.created);

    table.account(proc, first.slot, 100);
    table.account(proc, first.slot, 250);
    EXPECT_EQ(table.loadPktCount(proc, first.slot), 2u);
    EXPECT_EQ(table.loadByteCount(proc, first.slot), 350u);
    EXPECT_EQ(table.loadNatPort(proc, first.slot),
              SessionTable::natPortFor(first.slot));
    EXPECT_FALSE(proc.fatalOccurred());
}

TEST(SessionTable, TimeoutEvictsIdleSessions)
{
    ClumsyProcessor proc;
    SessionTable table(proc, 64, /*timeoutPackets=*/10);

    const auto a = table.lookup(proc, key(1), 1);
    ASSERT_TRUE(a.created);

    // Within the timeout the session survives and refreshes lastSeen.
    EXPECT_FALSE(table.lookup(proc, key(1), 9).created);

    // Past the timeout the same flow re-creates (its own slot expired
    // under it: created, evicted).
    const auto late = table.lookup(proc, key(1), 100);
    EXPECT_EQ(late.slot, a.slot);
    EXPECT_TRUE(late.created);
    EXPECT_TRUE(late.evicted);

    // The host mirror runs the same algorithm on the same clock.
    SessionTable mirror(proc, 64, 10);
    EXPECT_TRUE(mirror.noteArrival(key(1), 1).created);
    EXPECT_FALSE(mirror.noteArrival(key(1), 9).created);
    const auto hostLate = mirror.noteArrival(key(1), 100);
    EXPECT_TRUE(hostLate.created);
    EXPECT_TRUE(hostLate.evicted);
    EXPECT_EQ(mirror.hostCreated(), 2u);
    EXPECT_EQ(mirror.hostEvicted(), 1u);
}

TEST(SessionTable, ProbeExhaustionDropsWhenFull)
{
    // Capacity 4, no expirable incumbents: the fifth live flow has
    // nowhere to go and must report kNoSlot, on both the simulated
    // table and the host mirror.
    ClumsyProcessor proc;
    SessionTable table(proc, 4, 1000);
    for (std::uint32_t n = 0; n < 4; ++n)
        ASSERT_NE(table.lookup(proc, key(n), 1).slot,
                  SessionTable::kNoSlot);
    EXPECT_EQ(table.lookup(proc, key(99), 2).slot,
              SessionTable::kNoSlot);

    SessionTable mirror(proc, 4, 1000);
    for (std::uint32_t n = 0; n < 4; ++n)
        mirror.noteArrival(key(n), 1);
    EXPECT_EQ(mirror.noteArrival(key(99), 2).slot,
              SessionTable::kNoSlot);
    EXPECT_EQ(mirror.hostDropped(), 1u);
}

TEST(SessionApp, GoldenRunIsCleanAndSessionsChurn)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 1500;
    cfg.faultScale = 0.0;
    const auto res = core::runExperiment(sessionFactory(), cfg);
    EXPECT_EQ(res.anyErrorProb, 0.0);
    EXPECT_EQ(res.fatalFraction, 0.0);
    EXPECT_GT(res.golden.packetsProcessed, 0u);
}

TEST(SessionApp, FaultsDivergeSessionState)
{
    // The point of the workload: one fault in a session record keeps
    // corrupting later packets of the flow, so at a high fault scale
    // the session-state keys must show errors.
    core::ExperimentConfig cfg;
    cfg.numPackets = 800;
    cfg.trials = 2;
    cfg.faultScale = 50.0;
    const auto res = core::runExperiment(sessionFactory(), cfg);
    EXPECT_GT(res.anyErrorProb, 0.0);

    double sessionErr = 0.0;
    for (const auto &[type, prob] : res.errorProbByType)
        if (type.rfind("session_", 0) == 0 ||
            type == "initialization" || type == "nat_port" ||
            type == "translated_ip")
            sessionErr += prob;
    EXPECT_GT(sessionErr, 0.0);
}

TEST(SessionApp, ExperimentIsDeterministic)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 600;
    cfg.trials = 2;
    cfg.faultScale = 20.0;
    const auto a = core::runExperiment(sessionFactory(), cfg);
    const auto b = core::runExperiment(sessionFactory(), cfg);
    EXPECT_EQ(sweep::experimentResultJson(a),
              sweep::experimentResultJson(b));
}

TEST(SessionApp, TinyTableDropsUnderChurn)
{
    // An 8-slot table against a 512-flow churning population must hit
    // the drop path (kNoSlot) without dying.
    core::ExperimentConfig cfg;
    cfg.numPackets = 1200;
    cfg.faultScale = 0.0;
    apps::SessionParams tiny;
    tiny.capacity = 8;
    tiny.timeoutPackets = 64;
    const auto res = core::runExperiment(sessionFactory(tiny), cfg);
    EXPECT_EQ(res.anyErrorProb, 0.0);
    EXPECT_GT(res.golden.packetsProcessed, 0u);
}

TEST(SessionApp, ChipExperimentByteIdenticalAcrossChipJobs)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 500;
    cfg.trials = 2;
    cfg.faultScale = 10.0;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;

    const auto serial =
        npu::runChipExperiment(sessionFactory(), cfg, npuCfg);
    npu::NpuConfig parallel = npuCfg;
    parallel.chipJobs = 4;
    const auto threaded =
        npu::runChipExperiment(sessionFactory(), cfg, parallel);

    EXPECT_EQ(sweep::experimentResultJson(serial.core),
              sweep::experimentResultJson(threaded.core));
    EXPECT_EQ(sweep::chipMetricsJson(serial.faultyChip),
              sweep::chipMetricsJson(threaded.faultyChip));
}
