/**
 * @file
 * Golden-trace regression corpus for the chip model.
 *
 * Each corpus entry pins the exact numeric outcome of one small chip
 * run — chip ED2F2, throughput, completion and drop counts, merged
 * fallibility — as shortest-round-trip decimal text under
 * tests/golden/. The suite re-runs every configuration and compares
 * the fresh digest against the checked-in file *stringwise*, so any
 * refactor that shifts chip results by even one ULP fails loudly
 * instead of drifting silently (the concern the Ramulator 2.0
 * re-evaluation work documents for shared-memory models).
 *
 * The corpus was generated from the private-L2 model that predates the
 * genuinely-shared L2 refactor, so it doubles as the bit-identity
 * regression for `l2=private` chip runs.
 *
 * Regenerating (only when a change is *meant* to shift results):
 *   CLUMSY_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
 * then commit the rewritten files and say why in the commit message.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "npu/chip.hh"
#include "npu/config.hh"

namespace
{

using namespace clumsy;

/** One pinned configuration: 2 apps x 2 seed sets, small runs. */
struct GoldenCase
{
    const char *name; ///< corpus file stem
    const char *app;
    std::uint64_t traceSeed;
    std::uint64_t faultSeed;
    bool drop; ///< true: drop mode (queue-full drops); false:
               ///< backpressure (stall accounting)
};

const GoldenCase kCases[] = {
    {"route_s1", "route", 1, 0x5eed, true},
    {"route_s2", "route", 9, 0xb0a710ad, true},
    {"nat_s1", "nat", 1, 0x5eed, false},
    {"nat_s2", "nat", 9, 0xb0a710ad, false},
};

/** Exact round-trip text for a double (%.17g re-reads bit-equal). */
std::string
exact(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Run one case and render its digest (ordered key=value lines). */
std::string
digest(const GoldenCase &gc)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 200;
    cfg.trials = 2;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    cfg.traceSeed = gc.traceSeed;
    cfg.faultSeed = gc.faultSeed;

    npu::NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
    npuCfg.mshrs = 2;
    npuCfg.queueCapacity = 4;
    npuCfg.dropWhenFull = gc.drop;
    // Spread arrivals so the run processes most of the trace while
    // still overflowing the short queues now and then: both the
    // completion path and the drop/backpressure accounting get pinned.
    npuCfg.arrivalGapCycles = gc.drop ? 60 : 400;

    const npu::ChipExperimentResult res =
        npu::runChipExperiment(apps::appFactory(gc.app), cfg, npuCfg);

    std::string out;
    auto put = [&out](const char *key, double v) {
        out += std::string(key) + "=" + exact(v) + "\n";
    };
    put("golden_packets",
        static_cast<double>(res.core.golden.packetsProcessed));
    put("faulty_packets",
        static_cast<double>(res.core.faulty.packetsProcessed));
    put("fallibility", res.core.fallibility);
    put("fatal_prob", res.core.fatalProb);
    put("cycles_per_packet", res.core.cyclesPerPacket);
    put("energy_per_packet_pj", res.core.energyPerPacketPj);
    put("edf", res.core.edf);
    put("golden_makespan_cycles", res.goldenChip.makespanCycles);
    put("golden_throughput_pps", res.goldenChip.throughputPps);
    put("golden_drops_queue_full", res.goldenChip.dropsQueueFull);
    put("golden_backpressure_stalls",
        res.goldenChip.backpressureStalls);
    put("faulty_chip_edf", res.faultyChip.chipEdf);
    put("faulty_throughput_pps", res.faultyChip.throughputPps);
    put("faulty_drops_queue_full", res.faultyChip.dropsQueueFull);
    put("faulty_drops_dead_pe", res.faultyChip.dropsDeadPe);
    put("faulty_backpressure_stalls",
        res.faultyChip.backpressureStalls);
    put("faulty_l2_port_waits", res.faultyChip.l2PortWaits);
    for (std::size_t pe = 0; pe < res.goldenChip.pePackets.size();
         ++pe)
        put(("golden_pe" + std::to_string(pe) + "_packets").c_str(),
            res.goldenChip.pePackets[pe]);
    return out;
}

std::string
goldenPath(const GoldenCase &gc)
{
    return std::string(CLUMSY_GOLDEN_DIR) + "/" + gc.name + ".golden";
}

class GoldenTrace : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenTrace, MatchesCorpus)
{
    const GoldenCase &gc = GetParam();
    const std::string fresh = digest(gc);
    const std::string path = goldenPath(gc);

    if (std::getenv("CLUMSY_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << fresh;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with CLUMSY_REGEN_GOLDEN=1";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string pinned = buf.str();

    if (fresh == pinned)
        return;
    // Report per-line so the drifted metric is named, not just "files
    // differ".
    std::map<std::string, std::string> want;
    std::istringstream ws(pinned);
    for (std::string line; std::getline(ws, line);) {
        const auto eq = line.find('=');
        if (eq != std::string::npos)
            want[line.substr(0, eq)] = line.substr(eq + 1);
    }
    std::istringstream gs(fresh);
    for (std::string line; std::getline(gs, line);) {
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        const std::string key = line.substr(0, eq);
        const std::string got = line.substr(eq + 1);
        const auto it = want.find(key);
        if (it == want.end())
            ADD_FAILURE() << gc.name << ": new metric " << key
                          << " not in corpus";
        else
            EXPECT_EQ(it->second, got) << gc.name << ": " << key
                                       << " drifted";
    }
    EXPECT_EQ(pinned, fresh) << gc.name << ": digest drifted";
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenTrace,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

} // namespace
