/**
 * @file
 * Reproduces paper Figure 4: probability of an SRAM fault vs relative
 * voltage swing — the closed-form model against the Monte-Carlo
 * integration of the noise statistics over the immunity curves.
 */

#include "bench/bench_common.hh"
#include "common/random.hh"
#include "fault/fault_model.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 0, 0);
    const fault::FaultModel model;
    Rng rng(2024);

    TextTable table("Figure 4: fault probability vs voltage swing");
    table.header({"Vsr", "P_E closed form", "P_E Monte-Carlo",
                  "MC/closed"});
    for (int i = 0; i < 13; ++i) {
        const double vsr = 0.40 + i * 0.05;
        const double cf = model.probAtSwing(vsr);
        const double mc = fault::monteCarloFaultProb(vsr, 40000, rng);
        table.row({
            TextTable::num(vsr, 2),
            TextTable::sci(cf, 3),
            TextTable::sci(mc, 3),
            TextTable::num(mc / cf, 3),
        });
    }
    opt.print(table);
    return 0;
}
