/**
 * @file
 * Ablation: sensitivity of the dynamic frequency-adaptation scheme to
 * its X1 (decrease) and X2 (increase) thresholds. The paper reports
 * that X1 = 200% / X2 = 80% works best overall (Section 4); this
 * bench sweeps both around that point for route and crc with
 * two-strike recovery and reports the relative EDF^2 product and the
 * controller's level residency.
 */

#include <cmath>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

namespace
{

double
relativeEdfFor(const std::string &app, double x1, double x2,
               const bench::Options &opt, double baseEdf)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = opt.packets;
    cfg.trials = opt.trials;
    cfg.dynamicFrequency = true;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    cfg.processor.freqCtl.x1 = x1;
    cfg.processor.freqCtl.x2 = x2;
    const auto res = core::runExperiment(apps::appFactory(app), cfg);
    const double edf = res.energyPerPacketPj *
                       std::pow(res.cyclesPerPacket, 2) *
                       std::pow(res.fallibility, 2);
    return edf / baseEdf;
}

double
baselineEdf(const std::string &app, const bench::Options &opt)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = opt.packets;
    cfg.trials = opt.trials;
    cfg.cr = 1.0;
    cfg.scheme = mem::RecoveryScheme::NoDetection;
    const auto res = core::runExperiment(apps::appFactory(app), cfg);
    return res.energyPerPacketPj * std::pow(res.cyclesPerPacket, 2) *
           std::pow(res.fallibility, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 1500, 4);

    for (const std::string app : {"route", "crc"}) {
        const double base = baselineEdf(app, opt);
        TextTable table("Dynamic-threshold ablation (relative EDF^2), "
                        "app = " + app);
        table.header({"X1 \\ X2", "0.50", "0.80", "0.95"});
        for (const double x1 : {1.5, 2.0, 3.0}) {
            std::vector<std::string> row{TextTable::num(x1, 2)};
            for (const double x2 : {0.50, 0.80, 0.95})
                row.push_back(TextTable::num(
                    relativeEdfFor(app, x1, x2, opt, base), 3));
            table.row(row);
        }
        opt.print(table);
    }
    std::puts("paper setting: X1 = 2.0, X2 = 0.8 (the center cell).");
    return 0;
}
