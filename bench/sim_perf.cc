/**
 * @file
 * Host-side simulator throughput harness behind BENCH_sim.json.
 *
 * Times the simulator's hot paths — the single-core golden run per
 * workload, a faulty single-core trial, and the multi-engine chip
 * step loop in its private-L2, shared-L2 and faulty flavors — and
 * reports host packets per second per cell as JSON.
 *
 * Every timed cell is self-checking: after timing the fast path it
 * re-runs the same experiment through the reference arm (the virtual
 * L2 seam via HierarchyConfig::forceGenericL2, and for chip cells the
 * per-arrival legacy dispatch via NpuConfig::dispatchBurst = 1) and
 * byte-compares every metric and recorder digest. A cell only reports
 * "identical": true when the optimized path produced bit-identical
 * modeled results; any divergence fails the whole binary, so a perf
 * number can never be committed for a path that changed the model.
 *
 * CI regenerates this JSON (--quick) and tools/check_perf.py gates on
 * the committed copy. The embedded pre_pr table holds the same cells
 * measured on the pre-rearchitecture tree (commit f4761ae) on the
 * reference container, so the committed file documents the speedup
 * the rearchitecture bought.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "core/experiment.hh"
#include "npu/chip.hh"
#include "npu/config.hh"

using namespace clumsy;

namespace
{

/** Host pps of the same cells on the pre-rearchitecture tree. */
struct PrePrCell
{
    const char *name;
    double pps;
};

/**
 * Measured at commit f4761ae (before the hot-path rearchitecture) on
 * the reference container: Release -O2, best of 3, packets = 4000
 * (core) / 6000 (chip) — the same protocol as the default run of this
 * binary. Kept in the source so a regenerated BENCH_sim.json always
 * carries the before/after record.
 */
constexpr PrePrCell kPrePr[] = {
    {"core/crc", 5545},       {"core/tl", 207898},
    {"core/route", 119502},   {"core/drr", 130587},
    {"core/nat", 140911},     {"core/md5", 3324},
    {"core/url", 29542},      {"core/adpcm", 9248},
    {"core/session", 221934}, {"core/lpm", 190134},
    {"core_faulty/route", 128060},
    {"chip/route", 100586},   {"chip/nat", 115239},
    {"chip/session", 111716}, {"chip_shared/nat", 118741},
    {"chip_faulty/route", 97587},
};

constexpr const char *kPrePrCommit = "f4761ae";

double
prePrPps(const std::string &name)
{
    for (const PrePrCell &c : kPrePr)
        if (name == c.name)
            return c.pps;
    return 0.0;
}

double
secondsSince(const std::chrono::steady_clock::time_point start)
{
    const auto dt = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(dt).count();
}

template <class Fn>
double
bestOf(unsigned reps, Fn &&fn)
{
    double best = 1e300;
    for (unsigned r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const double s = secondsSince(t0);
        if (s < best)
            best = s;
    }
    return best;
}

bool
sameU64Map(const std::map<std::string, std::uint64_t> &a,
           const std::map<std::string, std::uint64_t> &b)
{
    return a == b;
}

/** Exact equality — both arms are deterministic, so == is the test. */
bool
sameMetrics(const core::RunMetrics &a, const core::RunMetrics &b)
{
    return a.packetsAttempted == b.packetsAttempted &&
           a.packetsProcessed == b.packetsProcessed &&
           a.packetsWithError == b.packetsWithError &&
           a.fatal == b.fatal && a.fatalReason == b.fatalReason &&
           a.cyclesPerPacket == b.cyclesPerPacket &&
           a.energyPerPacketPj == b.energyPerPacketPj &&
           a.totalEnergyPj == b.totalEnergyPj &&
           a.l1dEnergyPj == b.l1dEnergyPj &&
           a.instructions == b.instructions &&
           a.dcacheAccesses == b.dcacheAccesses &&
           a.dcacheMissRate == b.dcacheMissRate &&
           a.faultsInjected == b.faultsInjected &&
           a.parityTrips == b.parityTrips &&
           a.eccCorrections == b.eccCorrections &&
           a.freqSwitches == b.freqSwitches &&
           a.ctrlEventsApplied == b.ctrlEventsApplied &&
           sameU64Map(a.errorsByType, b.errorsByType);
}

bool
sameVec(const std::vector<double> &a, const std::vector<double> &b)
{
    return a == b;
}

bool
sameChipMetrics(const npu::ChipMetrics &a, const npu::ChipMetrics &b)
{
    return a.makespanCycles == b.makespanCycles &&
           a.throughputPps == b.throughputPps &&
           a.loadImbalance == b.loadImbalance &&
           a.queueOccMean == b.queueOccMean &&
           a.queueOccMax == b.queueOccMax &&
           a.dropsQueueFull == b.dropsQueueFull &&
           a.dropsDeadPe == b.dropsDeadPe &&
           a.backpressureStalls == b.backpressureStalls &&
           a.l2PortWaits == b.l2PortWaits &&
           a.l2PortWaitCycles == b.l2PortWaitCycles &&
           a.crossEngineHits == b.crossEngineHits &&
           a.crossEngineHitFraction == b.crossEngineHitFraction &&
           a.l2EvictionsByOther == b.l2EvictionsByOther &&
           a.mshrMerges == b.mshrMerges && a.chipEdf == b.chipEdf &&
           sameVec(a.peUtilization, b.peUtilization) &&
           sameVec(a.pePackets, b.pePackets) &&
           sameVec(a.peL2Hits, b.peL2Hits) &&
           sameVec(a.peL2Misses, b.peL2Misses) &&
           sameVec(a.peCrFinal, b.peCrFinal) &&
           sameVec(a.peCrMean, b.peCrMean) &&
           sameVec(a.peEpochs, b.peEpochs) &&
           sameVec(a.peStepsUp, b.peStepsUp) &&
           sameVec(a.peStepsDown, b.peStepsDown);
}

bool
sameStream(const npu::ChipStreamResult &a,
           const npu::ChipStreamResult &b)
{
    return a.valueDigest == b.valueDigest &&
           a.peDigests == b.peDigests &&
           sameMetrics(a.merged, b.merged) &&
           sameChipMetrics(a.chip, b.chip);
}

/** One emitted JSON cell. */
struct Cell
{
    std::string name;
    std::uint64_t packets = 0;
    double seconds = 0.0;
    double refSeconds = 0.0;
    bool identical = false;
};

std::string
renderJson(const std::vector<Cell> &cells, std::uint64_t corePackets,
           std::uint64_t chipPackets, unsigned reps)
{
    std::string out;
    char buf[512];
    auto add = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof buf, fmt, args...);
        out += buf;
    };
    add("{\n  \"bench\": \"sim_perf\",\n");
    add("  \"host_threads\": %u,\n",
        std::thread::hardware_concurrency());
    add("  \"core_packets\": %llu,\n  \"chip_packets\": %llu,\n",
        static_cast<unsigned long long>(corePackets),
        static_cast<unsigned long long>(chipPackets));
    add("  \"reps\": %u,\n", reps);
    add("  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const double pps =
            static_cast<double>(c.packets) / c.seconds;
        const double refPps =
            static_cast<double>(c.packets) / c.refSeconds;
        add("    {\"name\": \"%s\", \"packets\": %llu, "
            "\"seconds\": %.4f, \"pps\": %.0f, \"ref_pps\": %.0f, "
            "\"identical\": %s}%s\n",
            c.name.c_str(),
            static_cast<unsigned long long>(c.packets), c.seconds,
            pps, refPps, c.identical ? "true" : "false",
            i + 1 < cells.size() ? "," : "");
    }
    add("  ],\n");
    add("  \"pre_pr\": {\n    \"commit\": \"%s\",\n", kPrePrCommit);
    add("    \"note\": \"same cells, pre-rearchitecture tree, "
        "best of 3 at 4000/6000 packets\",\n");
    add("    \"pps\": {\n");
    constexpr std::size_t nPre = sizeof kPrePr / sizeof kPrePr[0];
    for (std::size_t i = 0; i < nPre; ++i)
        add("      \"%s\": %.0f%s\n", kPrePr[i].name, kPrePr[i].pps,
            i + 1 < nPre ? "," : "");
    add("    }\n  }\n}\n");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t corePackets = 4000;
    std::uint64_t chipPackets = 6000;
    unsigned reps = 3;
    std::string outPath;
    cli::ArgParser parser(argv && argv[0] ? argv[0] : "sim_perf",
                          "Host-simulator throughput cells with "
                          "fast-vs-reference byte comparison.");
    parser.optU64("--packets", "N", "packets per single-core cell",
                  &corePackets);
    parser.optU64("--chip-packets", "N", "packets per chip cell",
                  &chipPackets);
    parser.optUnsigned("--reps", "N", "timing repetitions (best-of)",
                       &reps);
    parser.optString("--out", "FILE",
                     "also write the JSON to this path", &outPath);
    parser.flag("--quick",
                "1/4 of the default packets (CI mode)", [&]() {
                    corePackets /= 4;
                    chipPackets /= 4;
                });
    parser.parse(argc, argv);
    setQuiet(true);
    if (reps == 0)
        reps = 1;

    std::vector<Cell> cells;
    bool allIdentical = true;
    auto note = [&](const Cell &c) {
        std::fprintf(stderr,
                     "  %-18s %9.0f pps  (ref %9.0f)  %s\n",
                     c.name.c_str(),
                     static_cast<double>(c.packets) / c.seconds,
                     static_cast<double>(c.packets) / c.refSeconds,
                     c.identical ? "identical" : "DIVERGED");
        if (!c.identical)
            allIdentical = false;
    };

    // --- single-core golden runs, one cell per workload ------------
    std::vector<std::string> coreApps = apps::allAppNames();
    for (const std::string &a : apps::extensionAppNames())
        coreApps.push_back(a);
    for (const std::string &app : coreApps) {
        core::ExperimentConfig cfg;
        cfg.numPackets = corePackets;
        core::GoldenRecord fast;
        const double s = bestOf(reps, [&]() {
            fast = core::runGolden(apps::appFactory(app), cfg);
        });
        core::ExperimentConfig ref = cfg;
        ref.processor.hierarchy.forceGenericL2 = true;
        core::GoldenRecord slow;
        const double rs = bestOf(1, [&]() {
            slow = core::runGolden(apps::appFactory(app), ref);
        });
        Cell c{"core/" + app, corePackets, s, rs,
               sameMetrics(fast.metrics, slow.metrics) &&
                   fast.recorder.digest() == slow.recorder.digest() &&
                   fast.recorder.packetCount() ==
                       slow.recorder.packetCount()};
        note(c);
        cells.push_back(c);
    }

    // --- faulty single-core trial (injector + recovery hot) --------
    {
        core::ExperimentConfig cfg;
        cfg.numPackets = corePackets;
        cfg.cr = 0.5;
        cfg.scheme = mem::RecoveryScheme::TwoStrike;
        const core::GoldenRecord golden =
            core::runGolden(apps::appFactory("route"), cfg);
        core::RunMetrics fast;
        const double s = bestOf(reps, [&]() {
            fast = core::runFaultyTrial(apps::appFactory("route"),
                                        cfg, 0, golden);
        });
        core::ExperimentConfig ref = cfg;
        ref.processor.hierarchy.forceGenericL2 = true;
        core::RunMetrics slow;
        const double rs = bestOf(1, [&]() {
            slow = core::runFaultyTrial(apps::appFactory("route"),
                                        ref, 0, golden);
        });
        Cell c{"core_faulty/route", corePackets, s, rs,
               sameMetrics(fast, slow)};
        note(c);
        cells.push_back(c);
    }

    // --- chip step loop: private L2, shared L2, faulty -------------
    auto chipCell = [&](const std::string &name,
                        const std::string &app, npu::L2Mode l2,
                        bool faulty) {
        core::ExperimentConfig cfg;
        cfg.numPackets = chipPackets;
        if (faulty) {
            cfg.cr = 0.5;
            cfg.scheme = mem::RecoveryScheme::TwoStrike;
        }
        npu::NpuConfig npuCfg;
        npuCfg.peCount = 4;
        npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
        npuCfg.mshrs = 4;
        npuCfg.l2 = l2;
        npu::ChipStreamResult fast;
        const double s = bestOf(reps, [&]() {
            fast = npu::runChipStream(apps::appFactory(app), cfg,
                                      npuCfg, /*golden=*/!faulty, 0);
        });
        core::ExperimentConfig refCfg = cfg;
        refCfg.processor.hierarchy.forceGenericL2 = true;
        npu::NpuConfig refNpu = npuCfg;
        refNpu.dispatchBurst = 1;
        npu::ChipStreamResult slow;
        const double rs = bestOf(1, [&]() {
            slow = npu::runChipStream(apps::appFactory(app), refCfg,
                                      refNpu, /*golden=*/!faulty, 0);
        });
        Cell c{name, chipPackets, s, rs, sameStream(fast, slow)};
        note(c);
        cells.push_back(c);
    };
    chipCell("chip/route", "route", npu::L2Mode::Private, false);
    chipCell("chip/nat", "nat", npu::L2Mode::Private, false);
    chipCell("chip/session", "session", npu::L2Mode::Private, false);
    chipCell("chip_shared/nat", "nat", npu::L2Mode::Shared, false);
    chipCell("chip_faulty/route", "route", npu::L2Mode::Private, true);

    const std::string json =
        renderJson(cells, corePackets, chipPackets, reps);
    std::fputs(json.c_str(), stdout);
    if (!outPath.empty()) {
        std::FILE *f = std::fopen(outPath.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "sim_perf: cannot write %s\n",
                         outPath.c_str());
            return 1;
        }
        std::fputs(json.c_str(), f);
        std::fclose(f);
    }

    // Summary of the speedup the committed pre_pr table documents.
    for (const Cell &c : cells) {
        const double pre = prePrPps(c.name);
        if (pre > 0.0)
            std::fprintf(stderr, "  %-18s %.2fx vs pre-PR\n",
                         c.name.c_str(),
                         static_cast<double>(c.packets) / c.seconds /
                             pre);
    }
    if (!allIdentical) {
        std::fprintf(stderr,
                     "sim_perf: FAST PATH DIVERGED from reference\n");
        return 1;
    }
    return 0;
}
