/**
 * @file
 * Reproduces paper Figures 9-12: the relative energy-delay^2-
 * fallibility^2 product for each application (and the all-app
 * average) across the four recovery schemes (no detection, one-, two-
 * and three-strike) and five frequency configurations (static
 * Cr = 1, 0.75, 0.5, 0.25 and the dynamic adaptation scheme). All
 * bars are normalized to Cr = 1 with no detection, exactly as in the
 * paper. Also prints the Section 5.4 error-blind products
 * (energy-delay and energy-delay^2) for the Cr = 0.5 two-strike
 * configuration.
 *
 * Usage: fig9_12_edf_products [app ... | all] [--packets N]
 *        [--trials N] [--csv]
 */

#include <cmath>
#include <map>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"

using namespace clumsy;

namespace
{

struct Cell
{
    core::RunMetrics metrics;
    double fallibility = 1.0;
    double cycles = 0.0;
    double energy = 0.0;
};

/** One app's full grid of configurations. */
std::map<std::string, Cell>
runGrid(const std::string &app, const bench::Options &opt)
{
    std::map<std::string, Cell> grid;
    for (const auto scheme : mem::kAllRecoverySchemes) {
        for (const double cr : {1.0, 0.75, 0.5, 0.25, -1.0}) {
            const bool dynamic = cr < 0;
            core::ExperimentConfig cfg;
            cfg.numPackets = opt.packets;
            cfg.trials = opt.trials;
            cfg.cr = dynamic ? 1.0 : cr;
            cfg.dynamicFrequency = dynamic;
            cfg.scheme = scheme;
            const auto res =
                core::runExperiment(apps::appFactory(app), cfg);
            const std::string key =
                to_string(scheme) + "/" +
                (dynamic ? "dynamic" : TextTable::num(cr, 2));
            Cell cell;
            cell.metrics = res.faulty;
            cell.fallibility = res.fallibility;
            cell.cycles = res.cyclesPerPacket;
            cell.energy = res.energyPerPacketPj;
            grid.emplace(key, cell);
        }
    }
    return grid;
}

double
edfOf(const Cell &c, double m, double n)
{
    return c.energy * std::pow(c.cycles, m) *
           std::pow(c.fallibility, n);
}

void
printApp(const std::string &app,
         const std::map<std::string, Cell> &grid,
         const bench::Options &opt)
{
    const Cell &base = grid.at("no detection/1.00");
    const double baseEdf = edfOf(base, 2, 2);

    TextTable table("Figures 9-12: relative energy-delay^2-"
                    "fallibility^2, app = " + app);
    table.header({"scheme", "Cr=1", "Cr=0.75", "Cr=0.5", "Cr=0.25",
                  "dynamic"});
    for (const auto scheme : mem::kAllRecoverySchemes) {
        std::vector<std::string> row{to_string(scheme)};
        for (const std::string cfg :
             {"1.00", "0.75", "0.50", "0.25", "dynamic"}) {
            const auto &cell =
                grid.at(to_string(scheme) + "/" + cfg);
            row.push_back(
                TextTable::num(edfOf(cell, 2, 2) / baseEdf, 3));
        }
        table.row(row);
    }
    opt.print(table);

    // Section 5.4 error-blind numbers for the winning configuration.
    const Cell &best = grid.at("two-strike/0.50");
    const double ed = (best.energy * best.cycles) /
                      (base.energy * base.cycles);
    const double ed2 = (best.energy * best.cycles * best.cycles) /
                       (base.energy * base.cycles * base.cycles);
    std::printf("Cr=0.5 two-strike vs baseline: energy-delay %.3f "
                "(paper: 0.83), energy-delay^2 %.3f (paper: 0.74), "
                "EDF^2 %.3f\n\n",
                ed, ed2, edfOf(best, 2, 2) / baseEdf);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 1500, 6);

    std::vector<std::string> which;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "all") {
            which = apps::allAppNames();
            break;
        }
        if (arg[0] != '-') {
            which.push_back(arg);
        } else if (arg == "--packets" || arg == "--trials") {
            ++i; // value consumed by Options
        }
    }
    if (which.empty())
        which = apps::allAppNames();

    // Per-app tables plus the Figure 12(b) average across apps.
    std::map<std::string, std::vector<double>> averages;
    for (const auto &app : which) {
        const auto grid = runGrid(app, opt);
        printApp(app, grid, opt);
        const double baseEdf = edfOf(grid.at("no detection/1.00"), 2, 2);
        for (const auto &kv : grid)
            averages[kv.first].push_back(edfOf(kv.second, 2, 2) /
                                         baseEdf);
    }

    if (which.size() > 1) {
        TextTable avg("Figure 12(b): average over " +
                      std::to_string(which.size()) + " applications");
        avg.header({"scheme", "Cr=1", "Cr=0.75", "Cr=0.5", "Cr=0.25",
                    "dynamic"});
        for (const auto scheme : mem::kAllRecoverySchemes) {
            std::vector<std::string> row{to_string(scheme)};
            for (const std::string cfg :
                 {"1.00", "0.75", "0.50", "0.25", "dynamic"}) {
                const auto &v =
                    averages.at(to_string(scheme) + "/" + cfg);
                double sum = 0;
                for (const double x : v)
                    sum += x;
                row.push_back(TextTable::num(sum / v.size(), 3));
            }
            avg.row(row);
        }
        opt.print(avg);
        std::puts("paper headline: static Cr=0.5 + two-strike is the "
                  "best average configuration, reducing the product "
                  "by 24%; dynamic stays mostly in the Cr=0.5 region; "
                  "without detection, over-clocking makes the product "
                  "worse.");
    }
    return 0;
}
