/**
 * @file
 * Reproduces paper Figures 9-12: the relative energy-delay^2-
 * fallibility^2 product for each application (and the all-app
 * average) across the four recovery schemes (no detection, one-, two-
 * and three-strike) and five frequency configurations (static
 * Cr = 1, 0.75, 0.5, 0.25 and the dynamic adaptation scheme). All
 * bars are normalized to Cr = 1 with no detection, exactly as in the
 * paper. Also prints the Section 5.4 error-blind products
 * (energy-delay and energy-delay^2) for the Cr = 0.5 two-strike
 * configuration.
 *
 * The full {app} x {scheme} x {frequency} grid runs on the sweep
 * engine, so all cells and trials execute in parallel across --jobs
 * worker threads with bit-identical aggregates at any thread count.
 *
 * Usage: fig9_12_edf_products [app ... | all] [--packets N]
 *        [--trials N] [--jobs N] [--csv]
 */

#include <cmath>
#include <map>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"
#include "sweep/runner.hh"

using namespace clumsy;

namespace
{

struct Cell
{
    double fallibility = 1.0;
    double cycles = 0.0;
    double energy = 0.0;
};

/** "no detection/0.50"-style key matching the paper tables. */
std::string
cellKey(mem::RecoveryScheme scheme, const sweep::OperatingPoint &point)
{
    return to_string(scheme) + "/" +
           (point.dynamic ? "dynamic" : TextTable::num(point.cr, 2));
}

/** Run the whole multi-app grid on the sweep engine. */
std::map<std::string, std::map<std::string, Cell>>
runGrids(const std::vector<std::string> &apps,
         const bench::Options &opt)
{
    sweep::SweepSpec spec;
    spec.apps = apps;
    spec.points = {{1.0, false},
                   {0.75, false},
                   {0.5, false},
                   {0.25, false},
                   {1.0, true}};
    spec.schemes.assign(std::begin(mem::kAllRecoverySchemes),
                        std::end(mem::kAllRecoverySchemes));
    spec.packets = opt.packets;
    spec.trials = opt.trials;

    const sweep::SweepOutcome outcome =
        sweep::runSweep(spec, opt.jobs);

    std::map<std::string, std::map<std::string, Cell>> grids;
    for (const sweep::CellOutcome &out : outcome.cells) {
        Cell cell;
        cell.fallibility = out.result.fallibility;
        cell.cycles = out.result.cyclesPerPacket;
        cell.energy = out.result.energyPerPacketPj;
        grids[out.cell.app].emplace(
            cellKey(out.cell.scheme, out.cell.point), cell);
    }
    return grids;
}

double
edfOf(const Cell &c, double m, double n)
{
    return c.energy * std::pow(c.cycles, m) *
           std::pow(c.fallibility, n);
}

void
printApp(const std::string &app,
         const std::map<std::string, Cell> &grid,
         const bench::Options &opt)
{
    const Cell &base = grid.at("no detection/1.00");
    const double baseEdf = edfOf(base, 2, 2);

    TextTable table("Figures 9-12: relative energy-delay^2-"
                    "fallibility^2, app = " + app);
    table.header({"scheme", "Cr=1", "Cr=0.75", "Cr=0.5", "Cr=0.25",
                  "dynamic"});
    for (const auto scheme : mem::kAllRecoverySchemes) {
        std::vector<std::string> row{to_string(scheme)};
        for (const std::string cfg :
             {"1.00", "0.75", "0.50", "0.25", "dynamic"}) {
            const auto &cell =
                grid.at(to_string(scheme) + "/" + cfg);
            row.push_back(
                TextTable::num(edfOf(cell, 2, 2) / baseEdf, 3));
        }
        table.row(row);
    }
    opt.print(table);

    // Section 5.4 error-blind numbers for the winning configuration.
    const Cell &best = grid.at("two-strike/0.50");
    const double ed = (best.energy * best.cycles) /
                      (base.energy * base.cycles);
    const double ed2 = (best.energy * best.cycles * best.cycles) /
                       (base.energy * base.cycles * base.cycles);
    std::printf("Cr=0.5 two-strike vs baseline: energy-delay %.3f "
                "(paper: 0.83), energy-delay^2 %.3f (paper: 0.74), "
                "EDF^2 %.3f\n\n",
                ed, ed2, edfOf(best, 2, 2) / baseEdf);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 1500, 6);

    std::vector<std::string> which;
    for (const std::string &arg : opt.positionals) {
        if (arg == "all") {
            which = apps::allAppNames();
            break;
        }
        which.push_back(arg);
    }
    if (which.empty())
        which = apps::allAppNames();

    const auto grids = runGrids(which, opt);

    // Per-app tables plus the Figure 12(b) average across apps.
    std::map<std::string, std::vector<double>> averages;
    for (const auto &app : which) {
        const auto &grid = grids.at(app);
        printApp(app, grid, opt);
        const double baseEdf = edfOf(grid.at("no detection/1.00"), 2, 2);
        for (const auto &kv : grid)
            averages[kv.first].push_back(edfOf(kv.second, 2, 2) /
                                         baseEdf);
    }

    if (which.size() > 1) {
        TextTable avg("Figure 12(b): average over " +
                      std::to_string(which.size()) + " applications");
        avg.header({"scheme", "Cr=1", "Cr=0.75", "Cr=0.5", "Cr=0.25",
                    "dynamic"});
        for (const auto scheme : mem::kAllRecoverySchemes) {
            std::vector<std::string> row{to_string(scheme)};
            for (const std::string cfg :
                 {"1.00", "0.75", "0.50", "0.25", "dynamic"}) {
                const auto &v =
                    averages.at(to_string(scheme) + "/" + cfg);
                double sum = 0;
                for (const double x : v)
                    sum += x;
                row.push_back(TextTable::num(sum / v.size(), 3));
            }
            avg.row(row);
        }
        opt.print(avg);
        std::puts("paper headline: static Cr=0.5 + two-strike is the "
                  "best average configuration, reducing the product "
                  "by 24%; dynamic stays mostly in the Cr=0.5 region; "
                  "without detection, over-clocking makes the product "
                  "worse.");
    }
    return 0;
}
