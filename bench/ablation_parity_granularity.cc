/**
 * @file
 * Ablation: parity granularity. The paper protects each 32-bit word
 * with a single parity bit (Section 5.4, per Phelan's ARM numbers).
 * This bench quantifies the design space analytically under the
 * clumsy fault model, where multi-bit faults flip *adjacent* bits
 * (coupling noise):
 *
 *  - detection coverage of 1-, 2- and 3-bit adjacent-flip faults for
 *    per-word, per-halfword and per-byte parity (exhaustive over all
 *    flip positions);
 *  - the resulting undetected-fault rate per 32-bit access at each
 *    relative cycle time;
 *  - the parity energy overhead, scaled from Phelan's single-bit
 *    numbers by the extra parity storage and trees.
 */

#include "bench/bench_common.hh"
#include "fault/fault_model.hh"

using namespace clumsy;

namespace
{

/** Fraction of k-adjacent-bit flips in a 32-bit word that cross a
 *  granule boundary or otherwise produce odd per-granule weight (and
 *  are therefore detected by per-granule parity). */
double
coverage(unsigned k, unsigned granuleBits)
{
    unsigned detected = 0;
    for (unsigned pos = 0; pos < 32; ++pos) {
        // Flip bits pos..pos+k-1 (mod 32, as the injector does).
        unsigned weight[32 / 8] = {0, 0, 0, 0};
        for (unsigned i = 0; i < k; ++i) {
            const unsigned bit = (pos + i) % 32;
            ++weight[bit / granuleBits];
        }
        bool odd = false;
        for (unsigned g = 0; g < 32 / granuleBits; ++g)
            odd |= (weight[g] & 1u) != 0;
        if (odd)
            ++detected;
    }
    return static_cast<double>(detected) / 32.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 0, 0);
    const fault::FaultModel model;

    TextTable cov("Detection coverage of adjacent k-bit flips");
    cov.header({"granularity", "1-bit", "2-bit", "3-bit",
                "parity bits/word", "read ovh", "write ovh"});
    struct Row
    {
        const char *name;
        unsigned granuleBits;
        unsigned bitsPerWord;
    };
    // Energy overhead scales with the number of parity trees/bits,
    // anchored at Phelan's +23%/+36% for 1 bit per word.
    for (const Row r : {Row{"per-word", 32, 1},
                        Row{"per-halfword", 16, 2},
                        Row{"per-byte", 8, 4}}) {
        const double scale = static_cast<double>(r.bitsPerWord);
        cov.row({
            r.name,
            TextTable::num(coverage(1, r.granuleBits), 3),
            TextTable::num(coverage(2, r.granuleBits), 3),
            TextTable::num(coverage(3, r.granuleBits), 3),
            std::to_string(r.bitsPerWord),
            TextTable::num(0.23 * scale, 2),
            TextTable::num(0.36 * scale, 2),
        });
    }
    opt.print(cov);

    TextTable und("Undetected-fault probability per 32-bit access");
    und.header({"Cr", "per-word", "per-halfword", "per-byte"});
    for (const double cr : {1.0, 0.75, 0.5, 0.25}) {
        const double p1 = model.bitFaultProb(cr) * 32.0;
        const double p2 = model.multiBitFaultProb(2, cr);
        const double p3 = model.multiBitFaultProb(3, cr);
        std::vector<std::string> row{TextTable::num(cr, 2)};
        for (const unsigned g : {32u, 16u, 8u}) {
            const double undetected = p1 * (1 - coverage(1, g)) +
                                      p2 * (1 - coverage(2, g)) +
                                      p3 * (1 - coverage(3, g));
            row.push_back(TextTable::sci(undetected, 3));
        }
        und.row(row);
    }
    opt.print(und);

    std::puts("takeaway: adjacent 2-bit faults defeat every parity "
              "granularity (even weight per granule unless the pair "
              "straddles a boundary), so finer parity buys little "
              "coverage while multiplying the Phelan energy overhead "
              "— the paper's per-word choice is the right corner.");
    return 0;
}
