/**
 * @file
 * Reproduces paper Table I: per-application instruction counts, cache
 * accesses, D-cache miss rate, and the fallibility factor at relative
 * clock cycles 0.5 and 0.25 (no-detection configuration).
 *
 * The {7 apps} x {Cr = 0.5, 0.25} grid runs on the sweep engine, so
 * every cell and trial executes in parallel across --jobs worker
 * threads with bit-identical aggregates at any thread count.
 *
 * Absolute instruction/access counts scale with --packets (the paper
 * simulated full NetBench traces); the comparable shape is the
 * instructions-per-access ratio, the miss rate, and the fallibility.
 */

#include <map>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"
#include "sweep/runner.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 2000, 6);

    sweep::SweepSpec spec;
    spec.apps = apps::allAppNames();
    spec.points = {{0.5, false}, {0.25, false}};
    spec.schemes = {mem::RecoveryScheme::NoDetection};
    spec.packets = opt.packets;
    spec.trials = opt.trials;

    const sweep::SweepOutcome outcome =
        sweep::runSweep(spec, opt.jobs);

    // Index the cells: app -> (Cr -> result).
    std::map<std::string, std::map<double, core::ExperimentResult>>
        byApp;
    for (const sweep::CellOutcome &cell : outcome.cells)
        byApp[cell.cell.app][cell.cell.point.cr] = cell.result;

    TextTable table("Table I: Networking Applications and Their "
                    "Properties");
    table.header({"App", "inst [K]", "cache acc [K]", "inst/acc",
                  "miss rate [%]", "fall. Cr=0.5", "fall. Cr=0.25"});

    for (const auto &name : apps::allAppNames()) {
        const auto &atHalf = byApp.at(name).at(0.5);
        const auto &atQuarter = byApp.at(name).at(0.25);

        const auto &g = atHalf.golden;
        table.row({
            name,
            TextTable::num(g.instructions / 1e3, 1),
            TextTable::num(g.dcacheAccesses / 1e3, 1),
            TextTable::num(static_cast<double>(g.instructions) /
                               static_cast<double>(g.dcacheAccesses),
                           2),
            TextTable::num(g.dcacheMissRate * 100.0, 2),
            TextTable::num(atHalf.fallibility, 3),
            TextTable::num(atQuarter.fallibility, 3),
        });
    }
    opt.print(table);

    std::puts("paper reference: miss rates crc 1.2, tl 9.2, route 5.8, "
              "drr 5.7, nat 7.1, md5 3.8, url 11.2 [%];");
    std::puts("paper fallibility Cr=0.5 / 0.25: crc 1.007/1.052, "
              "tl 1.016/1.135, route 1.001/1.018, drr 1.002/1.008,");
    std::puts("                                 nat 1.004/1.077, "
              "md5 1.055/1.261, url 1.003/1.018");
    return 0;
}
