/**
 * @file
 * Reproduces paper Figure 6: error probabilities of the route
 * application when faults are injected in (a) the control plane only,
 * (b) the data plane only, (c) both planes, across relative clock
 * cycles 100%/75%/50%/25% (no detection). Series are the paper's
 * marked values: initialization error, checksum, TTL, RouteTable
 * entry, radix tree entries, and fatal error probability.
 */

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

namespace
{

void
runPlane(const bench::Options &opt, core::FaultPlane plane)
{
    TextTable table("Figure 6: route error probability, faults in " +
                    core::to_string(plane));
    table.header({"Cr", "initialization", "checksum", "ttl",
                  "route_entry", "radix_node", "fatal"});
    for (const double cr : {1.0, 0.75, 0.5, 0.25}) {
        core::ExperimentConfig cfg;
        cfg.numPackets = opt.packets;
        cfg.trials = opt.trials;
        cfg.cr = cr;
        cfg.plane = plane;
        cfg.scheme = mem::RecoveryScheme::NoDetection;
        const auto res =
            core::runExperiment(apps::appFactory("route"), cfg);
        auto prob = [&res](const char *key) {
            auto it = res.errorProbByType.find(key);
            return it == res.errorProbByType.end() ? 0.0 : it->second;
        };
        table.row({
            TextTable::num(cr, 2),
            TextTable::num(prob("initialization"), 6),
            TextTable::num(prob("checksum"), 6),
            TextTable::num(prob("ttl"), 6),
            TextTable::num(prob("route_entry"), 6),
            TextTable::num(prob("radix_node"), 6),
            TextTable::num(res.fatalProb, 6),
        });
    }
    opt.print(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 2000, 8);
    runPlane(opt, core::FaultPlane::ControlOnly);
    runPlane(opt, core::FaultPlane::DataOnly);
    runPlane(opt, core::FaultPlane::Both);
    std::puts("paper shape: probabilities rise with clock rate; "
              "control-plane-only faults matter less overall because "
              "the control plane is short; error probabilities at "
              "Cr=0.25 reach ~1e-2 (both planes).");
    return 0;
}
