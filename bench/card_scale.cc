/**
 * @file
 * Line-card wall-clock baseline: --card-jobs speedup on a chips x
 * jobs grid, written machine-readable to BENCH_card.json.
 *
 * Times runCardExperiment (golden + trials, all advancing the chips
 * of one card together) at the shared-DRAM configuration the
 * inter-chip parallelism work targets (8 banks behind every chip's
 * L2, mshrs=2, l2=shared, flow dispatch within a chip, rr across
 * chips, two-strike at Cr=0.5) and records, per cell: wall
 * milliseconds, host-side packet throughput, the measured speedup
 * over the card-jobs=1 run of the same card, and the model bound
 * min(chips, jobs) — unlike --chip-jobs, the golden run itself fans
 * out across chips, so the bound is structural, not trial-limited.
 * Every cell is byte-compared against its serial twin (the
 * determinism contract), and the host's hardware thread count is
 * recorded so a reader can tell a 1-CPU container (measured speedup
 * pinned at ~1x, model bound is the tracked number) from a real
 * multi-core run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "common/pool.hh"
#include "core/experiment.hh"
#include "linecard/card.hh"
#include "npu/config.hh"
#include "sweep/json.hh"
#include "sweep/sink.hh"

using namespace clumsy;

namespace
{

struct Cell
{
    unsigned chips;
    unsigned jobs;    ///< requested --card-jobs (0 = hardware)
    double wallMs;
    double pps;       ///< host-side packets per second, all runs
    double measured;  ///< wall(jobs=1) / wall(jobs), same chips
    double model;     ///< min(chips, resolved jobs)
    bool identical;   ///< byte-equal to the jobs=1 run
};

/** Timed repetitions per cell; the minimum wall clock is reported. */
constexpr unsigned kReps = 2;

double
wallMsOf(const std::chrono::steady_clock::time_point start)
{
    const auto dt = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(dt).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 800, 2);
    const std::string app =
        opt.positionals.empty() ? "route" : opt.positionals[0];

    core::ExperimentConfig cfg;
    cfg.numPackets = opt.packets;
    cfg.trials = opt.trials;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;

    npu::NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.mshrs = 2;
    npuCfg.l2 = npu::L2Mode::Shared;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;

    const unsigned hostThreads = WorkStealingPool::hardwareWorkers();

    // Warm-up: one untimed card run so the first timed cell does not
    // pay the cold-start (page faults, lazy allocation) alone.
    {
        linecard::CardConfig warm;
        warm.chips = 1;
        warm.dram.banks = 8;
        (void)linecard::runCard(apps::appFactory(app), cfg, npuCfg,
                                warm, true, 0);
    }

    std::vector<Cell> cells;
    TextTable table(app + " @ Cr=0.50, two-strike, 8-bank shared "
                          "DRAM: card wall clock vs --card-jobs "
                          "(2 PEs/chip, mshrs=2, l2=shared)");
    table.header({"chips", "card-jobs", "wall [ms]", "pkt/s (host)",
                  "speedup", "model bound", "identical"});

    for (const unsigned chips : {1u, 2u, 4u}) {
        std::string serialRepr;
        double serialMs = 0.0;
        for (const unsigned jobs : {1u, 2u, 4u, 0u}) {
            linecard::CardConfig cardCfg;
            cardCfg.chips = chips;
            cardCfg.dram.banks = 8;
            cardCfg.cardJobs = jobs;

            // Min over reps: the least-disturbed run is the honest
            // wall-clock figure, same policy as bench/sim_perf.
            double wallMs = 0.0;
            std::string repr;
            for (unsigned rep = 0; rep < kReps; ++rep) {
                const auto start = std::chrono::steady_clock::now();
                const linecard::CardExperimentResult res =
                    linecard::runCardExperiment(apps::appFactory(app),
                                                cfg, npuCfg, cardCfg);
                const double ms = wallMsOf(start);
                if (rep == 0 || ms < wallMs)
                    wallMs = ms;
                repr = sweep::hexU64(res.golden.valueDigest) +
                       sweep::cardMetricsJson(res.golden.card) +
                       sweep::cardMetricsJson(res.faultyCard) +
                       sweep::formatDouble(res.fatalFraction);
            }
            if (jobs == 1) {
                serialRepr = repr;
                serialMs = wallMs;
            }

            // Every run (golden + trials) advances all chips, so the
            // host-side throughput counts every simulated packet.
            const double totalPackets =
                static_cast<double>(opt.packets) * (1.0 + opt.trials);

            const unsigned resolved =
                std::min(jobs == 0 ? hostThreads : jobs, chips);

            Cell cell;
            cell.chips = chips;
            cell.jobs = jobs;
            cell.wallMs = wallMs;
            cell.pps =
                wallMs > 0.0 ? totalPackets / (wallMs / 1000.0) : 0.0;
            cell.measured = wallMs > 0.0 ? serialMs / wallMs : 0.0;
            cell.model = static_cast<double>(
                resolved < 1 ? 1 : resolved);
            cell.identical = repr == serialRepr;
            cells.push_back(cell);

            table.row({std::to_string(chips),
                       jobs == 0 ? "hw" : std::to_string(jobs),
                       TextTable::num(wallMs, 1),
                       TextTable::num(cell.pps, 0),
                       TextTable::num(cell.measured, 2) + "x",
                       TextTable::num(cell.model, 2) + "x",
                       cell.identical ? "yes" : "NO"});
        }
    }
    opt.print(table);

    sweep::JsonWriter w(2);
    w.beginObject();
    w.key("bench").value("card_scale");
    w.key("app").value(app);
    w.key("packets").value(static_cast<std::uint64_t>(opt.packets));
    w.key("trials").value(static_cast<std::uint64_t>(opt.trials));
    w.key("host_threads").value(
        static_cast<std::uint64_t>(hostThreads));
    w.key("reps").value(std::uint64_t{kReps});
    w.key("config").beginObject();
    w.key("pes_per_chip").value(std::uint64_t{2});
    w.key("mshrs").value(std::uint64_t{2});
    w.key("l2").value("shared");
    w.key("dispatch").value("flow");
    w.key("card_dispatch").value("rr");
    w.key("dram_banks").value(std::uint64_t{8});
    w.key("cr").value(0.5);
    w.key("scheme").value("two-strike");
    w.endObject();
    w.key("cells").beginArray();
    for (const Cell &c : cells) {
        w.beginObject();
        w.key("name").value("chips" + std::to_string(c.chips) +
                            "-jobs" + std::to_string(c.jobs));
        w.key("chips").value(static_cast<std::uint64_t>(c.chips));
        w.key("card_jobs").value(static_cast<std::uint64_t>(c.jobs));
        w.key("wall_ms").value(c.wallMs);
        w.key("pps").value(c.pps);
        w.key("speedup_measured").value(c.measured);
        w.key("speedup_model").value(c.model);
        w.key("identical").value(c.identical);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    const char *outPath = "BENCH_card.json";
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath);
        return 1;
    }
    out << w.str() << "\n";
    std::printf("wrote %s\n", outPath);

    bool ok = true;
    for (const Cell &c : cells)
        ok = ok && c.identical;
    return ok ? 0 : 1;
}
