/**
 * @file
 * Reproduces paper Figure 5: probability of a fault vs relative cycle
 * time — the composition of the voltage-swing curve (Figure 1(b)) and
 * the fault-vs-swing curve (Figure 4) against the curve-fitted
 * formula of eq. (4), P_E = 2.59e-7 * exp((Fr^2 - 1)/6.67).
 */

#include "bench/bench_common.hh"
#include "common/random.hh"
#include "fault/fault_model.hh"
#include "fault/swing.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 0, 0);
    const fault::FaultModel model;
    Rng rng(2025);

    TextTable table("Figure 5: fault probability vs cycle time");
    table.header({"Cr", "Fr", "Vsr", "eq.(4)", "Monte-Carlo",
                  "scale vs Cr=1"});
    for (const double cr : {1.0, 0.9, 0.8, 0.75, 0.7, 0.6, 0.5, 0.4,
                            0.3, 0.25, 0.2}) {
        const double vsr = fault::relativeSwing(cr);
        const double cf = model.bitFaultProb(cr);
        const double mc = fault::monteCarloFaultProb(vsr, 40000, rng);
        table.row({
            TextTable::num(cr, 2),
            TextTable::num(1.0 / cr, 2),
            TextTable::num(vsr, 3),
            TextTable::sci(cf, 3),
            TextTable::sci(mc, 3),
            TextTable::num(model.scaleFactor(cr), 2),
        });
    }
    opt.print(table);
    std::puts("paper observation: the clock cycle can be reduced by "
              "almost 60% before a major increase in faults.");
    return 0;
}
