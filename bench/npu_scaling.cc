/**
 * @file
 * Chip scaling: throughput, contention and ED2F2 vs engine count.
 *
 * Runs the same workload on chips of N = 1, 2, 4, 8, 16 processing
 * engines (src/npu/) at a clumsy operating point and reports how
 * throughput scales, where the shared L2 port starts to saturate, how
 * even the dispatcher keeps the load, and what happens to the
 * chip-level energy x delay^2 x fallibility^2 product. The paper
 * argues clumsy packet processors win because packet throughput is
 * what matters, not single-packet latency — this bench quantifies
 * that claim on the replicated-engine chip a real NPU would build.
 * Each grid runs three times: at mshrs=1 (fully serialized port),
 * mshrs=4 (overlapped misses) to show where the roll-off moves, and
 * mshrs=4 with l2=shared so engines hit on each other's refills and
 * the cross-engine hit fraction is visible next to the wait numbers.
 */

#include <string>
#include <vector>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"
#include "npu/chip.hh"
#include "npu/config.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 2000, 4);

    std::vector<std::string> apps = opt.positionals;
    if (apps.empty())
        apps = {"route", "nat"};
    if (apps.size() == 1 && apps[0] == "all")
        apps = apps::allAppNames();

    for (const std::string &app : apps) {
        core::ExperimentConfig cfg;
        cfg.numPackets = opt.packets;
        cfg.trials = opt.trials;
        cfg.cr = 0.5;
        cfg.scheme = mem::RecoveryScheme::TwoStrike;

        // The MSHR dimension: a single-slot port serializes every
        // transfer (the roll-off around 4 engines); 4 MSHRs let
        // misses overlap and push the knee outward. The third pass
        // keeps mshrs=4 but makes the L2 contents genuinely shared.
        struct Variant
        {
            unsigned mshrs;
            npu::L2Mode l2;
        };
        for (const Variant v : {Variant{1u, npu::L2Mode::Private},
                                Variant{4u, npu::L2Mode::Private},
                                Variant{4u, npu::L2Mode::Shared}}) {
            TextTable table(
                app + " @ Cr=0.50, two-strike: scaling with engine "
                "count (rr dispatch, saturated input, mshrs=" +
                std::to_string(v.mshrs) +
                ", l2=" + npu::to_string(v.l2) + ")");
            table.header({"PEs", "throughput [pkt/s]", "speedup",
                          "imbalance", "L2 wait [cyc/pkt]",
                          "x-hit frac", "fallibility", "chip ED2F2"});
            double basePps = 0.0;
            for (const unsigned pes : {1u, 2u, 4u, 8u, 16u}) {
                npu::NpuConfig npuCfg;
                npuCfg.peCount = pes;
                npuCfg.mshrs = v.mshrs;
                npuCfg.l2 = v.l2;
                // Fan the faulty trials out across --jobs workers;
                // results are byte-identical for every value, so
                // this only buys wall clock.
                npuCfg.chipJobs = opt.jobs;
                const npu::ChipExperimentResult res =
                    npu::runChipExperiment(apps::appFactory(app), cfg,
                                           npuCfg);
                const npu::ChipMetrics &chip = res.faultyChip;
                if (pes == 1)
                    basePps = chip.throughputPps;
                const double processed =
                    res.core.faulty.packetsProcessed
                        ? static_cast<double>(
                              res.core.faulty.packetsProcessed)
                        : 1.0;
                table.row({
                    std::to_string(pes),
                    TextTable::num(chip.throughputPps, 0),
                    TextTable::num(basePps > 0
                                       ? chip.throughputPps / basePps
                                       : 0.0,
                                   2) + "x",
                    TextTable::num(chip.loadImbalance, 3),
                    TextTable::num(chip.l2PortWaitCycles / processed,
                                   1),
                    TextTable::num(chip.crossEngineHitFraction, 3),
                    TextTable::num(res.core.fallibility, 4),
                    TextTable::sci(chip.chipEdf, 3),
                });
            }
            opt.print(table);
        }
    }
    std::puts("speedup is throughput relative to the one-engine chip; "
              "the shared L2 port (fixed-width, FIFO) is what bends "
              "the curve — L2 wait is queuing delay already included "
              "in the cycle counts, not an extra charge. mshrs=K lets "
              "K transfers overlap before the port serializes; with "
              "l2=shared, x-hit frac is the share of data-plane L2 "
              "hits served from lines another engine filled.");
    return 0;
}
