/**
 * @file
 * Reproduces paper Figure 3: the number of neighbor-switching
 * combinations producing each noise-amplitude level, with the
 * exponential fit of eq. (1) and its saturation toward the continuous
 * density of eq. (2).
 */

#include <cmath>

#include "bench/bench_common.hh"
#include "fault/noise.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 0, 0);

    for (const unsigned n : {4u, 8u, 16u}) {
        const auto counts = fault::switchingCaseCounts(n);
        const auto fit = fault::fitSwitchingDistribution(n);

        TextTable table("Figure 3: switching combinations, n = " +
                        std::to_string(n) + " coupled lines");
        table.header({"Ar=k/n", "exact cases", "fit K1*exp(-K2*Ar)"});
        for (unsigned k = 0; k <= n; ++k) {
            table.row({
                TextTable::num(static_cast<double>(k) / n, 3),
                std::to_string(counts[k]),
                TextTable::sci(fit.k1 * std::exp(-fit.k2 * k / n), 3),
            });
        }
        opt.print(table);
        std::printf("fit: K1 = %.3e, K2 = %.2f, log-space R^2 = %.4f "
                    "(eq. (2) saturation constant: %.1f)\n\n",
                    fit.k1, fit.k2, fit.r2, fault::kAmplitudeRate);
    }
    return 0;
}
