/**
 * @file
 * Shared option handling for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --packets N   packets per run (default per bench)
 *   --trials N    faulty replays averaged per configuration
 *   --jobs N      sweep worker threads (default: all hardware threads)
 *   --csv         print CSV instead of aligned tables
 *   --quick       1/4 of the default packets and trials (CI mode)
 *
 * Bare arguments (workload names, "all") are collected into
 * positionals for benches that take them.
 */

#ifndef CLUMSY_BENCH_COMMON_HH
#define CLUMSY_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace clumsy::bench
{

/** Parsed command-line options. */
struct Options
{
    std::uint64_t packets;
    unsigned trials;
    unsigned jobs = 0; ///< 0 = all hardware threads
    bool csv = false;
    std::vector<std::string> positionals;

    Options(int argc, char **argv, std::uint64_t defPackets,
            unsigned defTrials)
        : packets(defPackets), trials(defTrials)
    {
        cli::ArgParser parser(argv && argv[0] ? argv[0] : "bench",
                              "Paper figure/table reproduction.");
        parser.optU64("--packets", "N", "packets per run", &packets);
        parser.optUnsigned("--trials", "N",
                           "faulty replays per configuration",
                           &trials);
        parser.optUnsigned(
            "--jobs", "N",
            "sweep worker threads (default: all hardware threads)",
            &jobs);
        parser.flag("--csv", "print CSV instead of aligned tables",
                    &csv);
        parser.flag("--quick",
                    "1/4 of the default packets and trials (CI mode)",
                    [this, defPackets, defTrials]() {
                        packets = defPackets / 4 ? defPackets / 4 : 1;
                        trials = defTrials / 4 ? defTrials / 4 : 1;
                    });
        parser.positional("app", "workload names (or \"all\")",
                          [this](const std::string &v) {
                              positionals.push_back(v);
                          });
        parser.parse(argc, argv);
        setQuiet(true);
    }

    /** Print a rendered table per the --csv flag. */
    void print(const TextTable &table) const
    {
        std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);
        std::fputc('\n', stdout);
    }
};

} // namespace clumsy::bench

#endif // CLUMSY_BENCH_COMMON_HH
