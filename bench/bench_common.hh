/**
 * @file
 * Shared option handling for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --packets N   packets per run (default per bench)
 *   --trials N    faulty replays averaged per configuration
 *   --csv         print CSV instead of aligned tables
 *   --quick       1/4 of the default packets and trials (CI mode)
 */

#ifndef CLUMSY_BENCH_COMMON_HH
#define CLUMSY_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"

namespace clumsy::bench
{

/** Parsed command-line options. */
struct Options
{
    std::uint64_t packets;
    unsigned trials;
    bool csv = false;

    Options(int argc, char **argv, std::uint64_t defPackets,
            unsigned defTrials)
        : packets(defPackets), trials(defTrials)
    {
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--csv")) {
                csv = true;
            } else if (!std::strcmp(argv[i], "--quick")) {
                packets = defPackets / 4 ? defPackets / 4 : 1;
                trials = defTrials / 4 ? defTrials / 4 : 1;
            } else if (!std::strcmp(argv[i], "--packets") &&
                       i + 1 < argc) {
                packets = std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(argv[i], "--trials") &&
                       i + 1 < argc) {
                trials = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
            }
        }
        setQuiet(true);
    }

    /** Print a rendered table per the --csv flag. */
    void print(const TextTable &table) const
    {
        std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);
        std::fputc('\n', stdout);
    }
};

} // namespace clumsy::bench

#endif // CLUMSY_BENCH_COMMON_HH
