/**
 * @file
 * Streaming traffic-model scale proof, written machine-readable to
 * BENCH_traffic.json.
 *
 * Runs the stateful session workload on a 4-engine chip under the
 * churn traffic model through npu::runChipStream — the O(1)-memory
 * streaming harness — at two packet counts 10x apart, and checks the
 * subsystem's load-bearing claims:
 *
 *  - flat memory: peak RSS after the large run must stay within a
 *    small ratio + slack of the peak after the small run (ru_maxrss
 *    is a monotone high-water mark, so the small count runs first);
 *  - determinism: at each count the run is repeated and re-run at
 *    --chip-jobs 4, and both must reproduce the value digest and the
 *    chip metrics byte-for-byte;
 *  - fault sensitivity: a faulty stream at the small count must
 *    produce a different digest (reported; the golden claims gate the
 *    exit code).
 *
 * Defaults prove the 10M-packet tier (small = 1M); CI runs
 * `--packets 1000000` for a 1M/100k-tier smoke.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/session.hh"
#include "bench/bench_common.hh"
#include "common/pool.hh"
#include "core/experiment.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "sweep/json.hh"
#include "sweep/sink.hh"

using namespace clumsy;

namespace
{

struct CountResult
{
    std::uint64_t packets = 0;
    double wallMs = 0.0;
    long rssKb = 0; ///< peak RSS after this count's runs
    std::uint64_t digest = 0;
    double pps = 0.0; ///< host packets simulated per wall second
    bool identicalRepeat = false;
    bool identicalChipJobs = false;
};

long
peakRssKb()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

double
wallMsOf(const std::chrono::steady_clock::time_point start)
{
    const auto dt = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(dt).count();
}

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 10'000'000, 1);

    core::AppFactory factory = [] {
        return std::make_unique<apps::SessionApp>();
    };

    core::ExperimentConfig cfg;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
    npuCfg.arrivalGapCycles = 100;

    const std::uint64_t large = opt.packets;
    const std::uint64_t small = large / 10 ? large / 10 : 1;

    TextTable table("session on 4 PEs (flow dispatch, churn traffic): "
                    "streaming chip runs at " +
                    std::to_string(small) + " and " +
                    std::to_string(large) + " packets");
    table.header({"packets", "wall [ms]", "pkt/s (host)",
                  "peak RSS [MB]", "digest", "repeat", "chip-jobs 4"});

    std::vector<CountResult> results;
    // Small count FIRST: ru_maxrss only ever rises, so the flatness
    // comparison below needs the small tier's peak recorded before
    // the large tier runs.
    for (const std::uint64_t count : {small, large}) {
        cfg.numPackets = count;

        const auto start = std::chrono::steady_clock::now();
        const npu::ChipStreamResult base =
            npu::runChipStream(factory, cfg, npuCfg);
        const double wallMs = wallMsOf(start);

        const std::string baseChip = sweep::chipMetricsJson(base.chip);

        const npu::ChipStreamResult again =
            npu::runChipStream(factory, cfg, npuCfg);
        npu::NpuConfig parallel = npuCfg;
        parallel.chipJobs = 4;
        const npu::ChipStreamResult jobs4 =
            npu::runChipStream(factory, cfg, parallel);

        CountResult r;
        r.packets = count;
        r.wallMs = wallMs;
        r.rssKb = peakRssKb();
        r.digest = base.valueDigest;
        r.pps = wallMs > 0.0
                    ? static_cast<double>(count) / (wallMs / 1e3)
                    : 0.0;
        r.identicalRepeat =
            again.valueDigest == base.valueDigest &&
            sweep::chipMetricsJson(again.chip) == baseChip;
        r.identicalChipJobs =
            jobs4.valueDigest == base.valueDigest &&
            sweep::chipMetricsJson(jobs4.chip) == baseChip;
        results.push_back(r);

        table.row({std::to_string(count), TextTable::num(wallMs, 0),
                   TextTable::num(r.pps, 0),
                   TextTable::num(static_cast<double>(r.rssKb) / 1024.0,
                                  1),
                   hex64(r.digest), r.identicalRepeat ? "yes" : "NO",
                   r.identicalChipJobs ? "yes" : "NO"});
    }
    opt.print(table);

    // Flat-memory ceiling: the 10x run may not grow the peak beyond
    // ratio + slack (allocator noise, thread stacks), or the harness
    // is hiding an O(packets) structure again.
    const double kRatio = 1.25;
    const long kSlackKb = 32 * 1024;
    const double rssRatio =
        results[0].rssKb > 0 ? static_cast<double>(results[1].rssKb) /
                                   static_cast<double>(results[0].rssKb)
                             : 0.0;
    const bool rssFlat =
        results[1].rssKb <=
        static_cast<long>(static_cast<double>(results[0].rssKb) *
                          kRatio) +
            kSlackKb;

    // Fault sensitivity: a faulty stream must move the digest.
    cfg.numPackets = small;
    cfg.faultScale = 20.0;
    const npu::ChipStreamResult faulty =
        npu::runChipStream(factory, cfg, npuCfg, false, 0);
    const bool faultyDiffers = faulty.valueDigest != results[0].digest;

    std::printf("peak RSS %ld KB @ %llu pkts -> %ld KB @ %llu pkts "
                "(ratio %.3f, %s); faulty digest %s\n",
                results[0].rssKb,
                static_cast<unsigned long long>(results[0].packets),
                results[1].rssKb,
                static_cast<unsigned long long>(results[1].packets),
                rssRatio, rssFlat ? "flat" : "NOT FLAT",
                faultyDiffers ? "differs (expected)" : "EQUAL");

    sweep::JsonWriter w(2);
    w.beginObject();
    w.key("bench").value("traffic_scale");
    w.key("app").value("session");
    w.key("pes").value(std::uint64_t{4});
    w.key("dispatch").value("flow");
    w.key("arrival_gap_cycles").value(std::uint64_t{100});
    w.key("host_threads").value(static_cast<std::uint64_t>(
        WorkStealingPool::hardwareWorkers()));
    w.key("counts").beginArray();
    for (const CountResult &r : results) {
        w.beginObject();
        w.key("packets").value(r.packets);
        w.key("wall_ms").value(r.wallMs);
        w.key("packets_per_sec_host").value(r.pps);
        w.key("peak_rss_kb").value(static_cast<std::uint64_t>(r.rssKb));
        w.key("value_digest").value(hex64(r.digest));
        w.key("identical_repeat").value(r.identicalRepeat);
        w.key("identical_chip_jobs").value(r.identicalChipJobs);
        w.endObject();
    }
    w.endArray();
    w.key("rss_ratio").value(rssRatio);
    w.key("rss_flat").value(rssFlat);
    w.key("faulty_digest_differs").value(faultyDiffers);
    w.endObject();

    const char *outPath = "BENCH_traffic.json";
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath);
        return 1;
    }
    out << w.str() << "\n";
    std::printf("wrote %s\n", outPath);

    bool ok = rssFlat;
    for (const CountResult &r : results)
        ok = ok && r.identicalRepeat && r.identicalChipJobs;
    return ok ? 0 : 1;
}
