/**
 * @file
 * Reproduces paper Figure 7: error probabilities of the nat
 * application for faults in (a) control plane, (b) data plane,
 * (c) both, across relative clock cycles (no detection). Series:
 * initialization, interface value, destination address, radix tree
 * entries, translated IP address, fatal error.
 */

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

namespace
{

void
runPlane(const bench::Options &opt, core::FaultPlane plane)
{
    TextTable table("Figure 7: nat error probability, faults in " +
                    core::to_string(plane));
    table.header({"Cr", "initialization", "interface", "dest_addr",
                  "radix_node", "translated_ip", "fatal"});
    for (const double cr : {1.0, 0.75, 0.5, 0.25}) {
        core::ExperimentConfig cfg;
        cfg.numPackets = opt.packets;
        cfg.trials = opt.trials;
        cfg.cr = cr;
        cfg.plane = plane;
        cfg.scheme = mem::RecoveryScheme::NoDetection;
        const auto res =
            core::runExperiment(apps::appFactory("nat"), cfg);
        auto prob = [&res](const char *key) {
            auto it = res.errorProbByType.find(key);
            return it == res.errorProbByType.end() ? 0.0 : it->second;
        };
        table.row({
            TextTable::num(cr, 2),
            TextTable::num(prob("initialization"), 6),
            TextTable::num(prob("interface"), 6),
            TextTable::num(prob("dest_addr"), 6),
            TextTable::num(prob("radix_node"), 6),
            TextTable::num(prob("translated_ip"), 6),
            TextTable::num(res.fatalProb, 6),
        });
    }
    opt.print(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 2000, 8);
    runPlane(opt, core::FaultPlane::ControlOnly);
    runPlane(opt, core::FaultPlane::DataOnly);
    runPlane(opt, core::FaultPlane::Both);
    std::puts("paper shape: for nat, data-plane faults matter more "
              "than control-plane faults; probabilities rise with the "
              "clock rate, reaching ~1e-2..5e-2 at Cr=0.25.");
    return 0;
}
