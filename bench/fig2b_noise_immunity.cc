/**
 * @file
 * Reproduces paper Figure 2(b): SRAM noise-immunity curves — the
 * critical noise amplitude as a function of noise duration, one curve
 * per voltage swing level. The area above each curve is the
 * fault-causing region integrated by the fault model.
 */

#include "bench/bench_common.hh"
#include "fault/immunity.hh"
#include "fault/swing.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 0, 0);
    const fault::ImmunityCurves curves;
    const double swings[] = {1.0, 0.8, 0.6, 0.4};

    TextTable table("Figure 2(b): noise immunity curves "
                    "(critical amplitude Ar)");
    table.header({"Dr", "Vsr=1.0", "Vsr=0.8", "Vsr=0.6", "Vsr=0.4"});
    for (int i = 1; i <= 20; ++i) {
        const double dr = i * 0.005;
        std::vector<std::string> row{TextTable::num(dr, 3)};
        for (const double vsr : swings)
            row.push_back(
                TextTable::num(curves.criticalAmplitude(dr, vsr), 4));
        table.row(row);
    }
    opt.print(table);

    TextTable margins("Static noise margins (Dr -> inf asymptote)");
    margins.header({"Vsr", "margin [xVfs]"});
    for (const double vsr : swings)
        margins.row({TextTable::num(vsr, 2),
                     TextTable::num(curves.staticMargin(vsr), 4)});
    opt.print(margins);
    return 0;
}
