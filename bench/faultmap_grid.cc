/**
 * @file
 * Repeated-address faults: the Cr/recovery grid rerun under two fault
 * geographies — i.i.d. cell failures (the paper's implicit model) and
 * a spatially correlated weak-cell map (src/fault/fault_map.hh), with
 * and without way-disable recovery.
 *
 * Under i.i.d. faults every line is equally likely to fail, so parity
 * invalidation plus L2 refill spreads the cost thinly. A mapped chip
 * concentrates failures on the same few frames: the same packets keep
 * striking the same sets, which is precisely the case way-disable
 * retirement (--way-retire) converts from a recurring parity storm
 * into a one-time capacity loss.
 */

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

namespace
{

struct Arm
{
    const char *mode;   ///< "iid" or "mapped"
    const char *scheme; ///< human name for the recovery column
    mem::RecoveryScheme recovery;
    unsigned retire; ///< way-disable threshold, 0 = never
};

constexpr Arm kArms[] = {
    {"iid", "none", mem::RecoveryScheme::NoDetection, 0},
    {"iid", "two-strike", mem::RecoveryScheme::TwoStrike, 0},
    {"iid", "two-strike+retire", mem::RecoveryScheme::TwoStrike, 1},
    {"mapped", "none", mem::RecoveryScheme::NoDetection, 0},
    {"mapped", "two-strike", mem::RecoveryScheme::TwoStrike, 0},
    {"mapped", "two-strike+retire", mem::RecoveryScheme::TwoStrike, 1},
};

void
runApp(const bench::Options &opt, const std::string &app)
{
    TextTable table("Repeated-address faults: " + app +
                    " under i.i.d. vs mapped weak cells");
    table.header({"Cr", "faults", "recovery", "injected", "trips",
                  "err_prob", "fallibility", "cyc/pkt"});
    for (const double cr : {1.0, 0.5, 0.25}) {
        for (const Arm &arm : kArms) {
            core::ExperimentConfig cfg;
            cfg.numPackets = opt.packets;
            cfg.trials = opt.trials;
            cfg.cr = cr;
            // Accelerated injection: scale the per-access fault odds
            // so every arm sees a real fault population at mid Cr
            // within bench-sized packet counts. The scale multiplies
            // both geographies identically, so iid-vs-mapped deltas
            // survive it.
            cfg.faultScale = 25.0;
            // Data-plane faults only: a mapped weak cell parked on a
            // table-install address would corrupt app setup itself
            // (an undetected-fault hazard, but not the one this grid
            // measures — repeated packet addresses are data-plane).
            cfg.plane = core::FaultPlane::DataOnly;
            cfg.scheme = arm.recovery;
            if (std::string(arm.mode) == "mapped")
                cfg.processor.faultMap =
                    fault::faultMapSpecFromString("spatial");
            cfg.processor.hierarchy.wayDisable.retireThreshold =
                arm.retire;
            const auto res =
                core::runExperiment(apps::appFactory(app), cfg);
            table.row({
                TextTable::num(cr, 2),
                arm.mode,
                arm.scheme,
                std::to_string(res.faulty.faultsInjected),
                std::to_string(res.faulty.parityTrips),
                TextTable::num(res.anyErrorProb, 6),
                TextTable::num(res.fallibility, 4),
                TextTable::num(res.cyclesPerPacket, 2),
            });
        }
    }
    opt.print(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 1500, 6);
    std::vector<std::string> apps = opt.positionals;
    if (apps.empty() || (apps.size() == 1 && apps[0] == "all"))
        apps = {"route", "nat"};
    for (const std::string &app : apps)
        runApp(opt, app);
    std::puts("shape: at equal Cr a mapped chip injects its faults "
              "into few fixed lines, so detection alone keeps paying "
              "the invalidation tax on every revisit; way-disable "
              "retirement trades that recurring cost for a one-time "
              "capacity hit and pulls cyc/pkt back toward the i.i.d. "
              "arm. At Cr=1.0 both geographies are quiet.");
    return 0;
}
