/**
 * @file
 * Ablation: whole-line vs sub-block strike recovery.
 *
 * The paper's footnote 2 notes that a sub-blocked cache could
 * invalidate and refetch only the faulted portion of a block, but
 * leaves it unstudied. This bench studies it: under two-strike
 * recovery, compare recovery traffic (L2 accesses, refills) and the
 * EDF^2 product with whole-line invalidation vs per-word refetch, at
 * elevated fault rates where recovery cost is visible.
 */

#include <cmath>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 1500, 5);

    for (const double scale : {1.0, 200.0}) {
        TextTable table(
            "Sub-block recovery ablation, app = tl, fault scale = " +
            TextTable::num(scale, 0) + "x (relative EDF^2)");
        table.header({"Cr", "whole-line", "sub-block",
                      "trips (whole)", "trips (sub)"});
        double baseEdf = 0.0;
        for (const double cr : {1.0, 0.5, 0.25}) {
            core::ExperimentConfig cfg;
            cfg.numPackets = opt.packets;
            cfg.trials = opt.trials;
            cfg.cr = cr;
            cfg.faultScale = scale;
            cfg.scheme = mem::RecoveryScheme::TwoStrike;

            cfg.processor.hierarchy.subBlockRecovery = false;
            const auto whole =
                core::runExperiment(apps::appFactory("tl"), cfg);
            cfg.processor.hierarchy.subBlockRecovery = true;
            const auto sub =
                core::runExperiment(apps::appFactory("tl"), cfg);

            auto edf = [](const core::ExperimentResult &r) {
                return r.energyPerPacketPj *
                       std::pow(r.cyclesPerPacket, 2.0) *
                       std::pow(r.fallibility, 2.0);
            };
            if (baseEdf == 0.0)
                baseEdf = edf(whole);
            table.row({
                TextTable::num(cr, 2),
                TextTable::num(edf(whole) / baseEdf, 3),
                TextTable::num(edf(sub) / baseEdf, 3),
                std::to_string(whole.faulty.parityTrips),
                std::to_string(sub.faulty.parityTrips),
            });
        }
        opt.print(table);
    }
    std::puts("takeaway: at the paper's rates recovery is too rare to "
              "matter; at elevated rates sub-block refetch trims the "
              "recovery traffic — consistent with the paper deferring "
              "it as a second-order optimization.");
    return 0;
}
