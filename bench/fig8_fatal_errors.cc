/**
 * @file
 * Reproduces paper Figure 8: fatal-error probability per packet for
 * every application across relative clock cycles, base architecture
 * (no error detection). The paper's observations: fatal probability
 * is ~0 until the clock-rate increase exceeds 100% (Cr < 0.5), and
 * architectures WITH detection never hit a fatal error — verified
 * here with a parity/two-strike column at Cr = 0.25.
 */

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 2000, 8);

    TextTable table("Figure 8: fatal error probability (no detection)");
    table.header({"App", "Cr=1.0", "Cr=0.75", "Cr=0.5", "Cr=0.25",
                  "Cr=0.25+two-strike"});
    for (const auto &name : apps::allAppNames()) {
        std::vector<std::string> row{name};
        for (const double cr : {1.0, 0.75, 0.5, 0.25}) {
            core::ExperimentConfig cfg;
            cfg.numPackets = opt.packets;
            cfg.trials = opt.trials;
            cfg.cr = cr;
            cfg.scheme = mem::RecoveryScheme::NoDetection;
            const auto res =
                core::runExperiment(apps::appFactory(name), cfg);
            row.push_back(TextTable::num(res.fatalProb, 6));
        }
        core::ExperimentConfig cfg;
        cfg.numPackets = opt.packets;
        cfg.trials = opt.trials;
        cfg.cr = 0.25;
        cfg.scheme = mem::RecoveryScheme::TwoStrike;
        const auto guarded =
            core::runExperiment(apps::appFactory(name), cfg);
        row.push_back(TextTable::num(guarded.fatalProb, 6));
        table.row(row);
    }
    opt.print(table);
    std::puts("paper shape: zero for small clock increases, rising "
              "past a 100% increase (Cr <= 0.5), up to ~1e-3; zero "
              "with error detection enabled.");
    return 0;
}
