/**
 * @file
 * Reproduces paper Figure 1(b): relative voltage swing vs relative
 * cycle time, plus the derived cache-energy scaling the paper quotes
 * in Section 5.4 (45%/19%/6% savings at Cr = 0.25/0.5/0.75).
 */

#include "bench/bench_common.hh"
#include "fault/swing.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 0, 0);

    TextTable table("Figure 1(b): voltage swing vs cycle time");
    table.header({"Cr", "Vsr", "energy saving [%]"});
    for (int i = 1; i <= 20; ++i) {
        const double cr = i * 0.05;
        const double vsr = fault::relativeSwing(cr);
        table.row({
            TextTable::num(cr, 2),
            TextTable::num(vsr, 4),
            TextTable::num((1.0 - fault::energyScale(cr)) * 100.0, 1),
        });
    }
    opt.print(table);

    TextTable anchors("Paper anchors");
    anchors.header({"Cr", "model saving [%]", "paper saving [%]"});
    const double paper[] = {45.0, 19.0, 6.0};
    const double crs[] = {0.25, 0.5, 0.75};
    for (int i = 0; i < 3; ++i) {
        anchors.row({
            TextTable::num(crs[i], 2),
            TextTable::num((1.0 - fault::energyScale(crs[i])) * 100.0,
                           1),
            TextTable::num(paper[i], 1),
        });
    }
    opt.print(anchors);
    return 0;
}
