/**
 * @file
 * Ablation: clumsy over-clocking vs conventional voltage overdrive.
 *
 * The paper's pitch is that raising the D-cache clock at constant
 * voltage trades *reliability* for speed and saves energy, while the
 * conventional route to the same cache frequency — raising Vdd — is
 * reliable but pays quadratic energy and a flush-heavy transition.
 * This bench puts the two side by side for each target frequency.
 */

#include "bench/bench_common.hh"
#include "energy/dvs.hh"
#include "fault/fault_model.hh"
#include "fault/swing.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 0, 0);
    const energy::DvsParams dvs;
    const fault::FaultModel model;

    TextTable table("Reaching a faster D-cache: clumsy vs overdrive "
                    "(per-access, relative to baseline)");
    table.header({"freq", "clumsy energy", "clumsy fault prob",
                  "overdrive Vdd", "overdrive energy",
                  "switch penalty [cycles]"});
    const double fMax = energy::frequencyAtVoltage(dvs.vMax, dvs);
    for (const double fr : {1.0, 4.0 / 3.0, 2.0, 4.0}) {
        const double cr = 1.0 / fr;
        std::string vddCell, energyCell;
        if (fr <= fMax) {
            const double v = energy::voltageForFrequency(fr, dvs);
            vddCell = TextTable::num(v, 3);
            energyCell =
                TextTable::num(energy::energyScaleAtVoltage(v), 3);
        } else {
            vddCell = "unreachable";
            energyCell = "> " + TextTable::num(fMax, 2) + "x cap";
        }
        table.row({
            TextTable::num(fr, 2) + "x",
            TextTable::num(fault::energyScale(cr), 3),
            TextTable::sci(model.bitFaultProb(cr), 2),
            vddCell,
            energyCell,
            std::to_string(fr == 1.0
                               ? 0
                               : dvs.transitionPenaltyCycles),
        });
    }
    opt.print(table);
    std::printf("alpha-power-law ceiling: overdrive at vMax = %.2f "
                "reaches only %.2fx — the 2x and 4x clumsy operating "
                "points cannot be bought with voltage at all.\n",
                dvs.vMax, fMax);
    std::puts("clumsy switches cost 10 cycles and no flush (paper "
              "Section 4); overdrive reaches the same frequency "
              "reliably but pays V^2 energy *growth* where clumsy "
              "pays an energy *saving* plus fallibility.");
    return 0;
}
