/**
 * @file
 * Chip-run wall-clock baseline: --chip-jobs speedup at a fixed
 * operating point, written machine-readable to BENCH_chip.json.
 *
 * Times runChipExperiment on a pes x chip-jobs grid at the contended
 * configuration the parallelism work targets (mshrs=4, l2=shared,
 * flow dispatch, queue DVS, two-strike at Cr=0.5) and records, per
 * cell: wall milliseconds, delivered packet throughput, the measured
 * speedup over the chip-jobs=1 run of the same chip, and the
 * critical-path model bound (1 + trials) / (1 + ceil(trials / jobs))
 * — the golden run is inherently serial, the faulty trials fan out.
 * Every parallel cell is also byte-compared against its serial twin
 * (the determinism contract), and the host's hardware thread count is
 * recorded so a reader can tell a 1-CPU container (measured speedup
 * pinned at ~1x, model bound is the tracked number) from a real
 * multi-core run.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "common/pool.hh"
#include "core/experiment.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "sweep/json.hh"
#include "sweep/sink.hh"

using namespace clumsy;

namespace
{

struct Cell
{
    unsigned pes;
    unsigned jobs;
    double wallMs;
    double pps;
    double measured; ///< wall(jobs=1) / wall(jobs), same pes
    double model;    ///< (1 + trials) / (1 + ceil(trials / jobs))
    bool identical;  ///< byte-equal to the jobs=1 run
};

double
wallMsOf(const std::chrono::steady_clock::time_point start)
{
    const auto dt = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(dt).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 1500, 8);
    const std::string app =
        opt.positionals.empty() ? "route" : opt.positionals[0];

    core::ExperimentConfig cfg;
    cfg.numPackets = opt.packets;
    cfg.trials = opt.trials;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;

    std::vector<Cell> cells;
    TextTable table(app + " @ Cr=0.50, two-strike: chip-run wall "
                          "clock vs --chip-jobs (mshrs=4, l2=shared, "
                          "flow dispatch, queue DVS)");
    table.header({"PEs", "chip-jobs", "wall [ms]", "pkt/s",
                  "speedup", "model bound", "identical"});

    for (const unsigned pes : {4u, 8u}) {
        std::string serialJson;
        double serialMs = 0.0;
        for (const unsigned jobs : {1u, 2u, 4u}) {
            npu::NpuConfig npuCfg;
            npuCfg.peCount = pes;
            npuCfg.mshrs = 4;
            npuCfg.l2 = npu::L2Mode::Shared;
            npuCfg.dispatch = npu::DispatchPolicy::FlowHash;
            npuCfg.dvs = npu::DvsMode::Queue;
            npuCfg.chipJobs = jobs;

            const auto start = std::chrono::steady_clock::now();
            const npu::ChipExperimentResult res =
                npu::runChipExperiment(apps::appFactory(app), cfg,
                                       npuCfg);
            const double wallMs = wallMsOf(start);

            const std::string json =
                sweep::experimentResultJson(res.core) +
                sweep::chipMetricsJson(res.faultyChip);
            if (jobs == 1) {
                serialJson = json;
                serialMs = wallMs;
            }

            Cell cell;
            cell.pes = pes;
            cell.jobs = jobs;
            cell.wallMs = wallMs;
            cell.pps = res.faultyChip.throughputPps;
            cell.measured = wallMs > 0.0 ? serialMs / wallMs : 0.0;
            cell.model = (1.0 + opt.trials) /
                         (1.0 + static_cast<double>(
                                    (opt.trials + jobs - 1) / jobs));
            cell.identical = json == serialJson;
            cells.push_back(cell);

            table.row({std::to_string(pes), std::to_string(jobs),
                       TextTable::num(wallMs, 1),
                       TextTable::num(cell.pps, 0),
                       TextTable::num(cell.measured, 2) + "x",
                       TextTable::num(cell.model, 2) + "x",
                       cell.identical ? "yes" : "NO"});
        }
    }
    opt.print(table);

    sweep::JsonWriter w(2);
    w.beginObject();
    w.key("bench").value("chip_perf");
    w.key("app").value(app);
    w.key("packets").value(static_cast<std::uint64_t>(opt.packets));
    w.key("trials").value(static_cast<std::uint64_t>(opt.trials));
    w.key("host_threads").value(static_cast<std::uint64_t>(
        WorkStealingPool::hardwareWorkers()));
    w.key("config").beginObject();
    w.key("mshrs").value(std::uint64_t{4});
    w.key("l2").value("shared");
    w.key("dispatch").value("flow");
    w.key("dvs").value("queue");
    w.key("cr").value(0.5);
    w.key("scheme").value("two-strike");
    w.endObject();
    w.key("grid").beginArray();
    for (const Cell &c : cells) {
        w.beginObject();
        w.key("pes").value(static_cast<std::uint64_t>(c.pes));
        w.key("chip_jobs").value(static_cast<std::uint64_t>(c.jobs));
        w.key("wall_ms").value(c.wallMs);
        w.key("packets_per_sec").value(c.pps);
        w.key("speedup_measured").value(c.measured);
        w.key("speedup_model").value(c.model);
        w.key("identical").value(c.identical);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    const char *outPath = "BENCH_chip.json";
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath);
        return 1;
    }
    out << w.str() << "\n";
    std::printf("wrote %s\n", outPath);

    bool ok = true;
    for (const Cell &c : cells)
        ok = ok && c.identical;
    return ok ? 0 : 1;
}
