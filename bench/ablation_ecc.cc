/**
 * @file
 * Ablation: parity + strike recovery (the paper's design) vs Hamming
 * SEC-DED (the alternative the paper dismisses: "error correction
 * techniques (such as Hamming codes) would incur unnecessary
 * complication on the design and energy consumption", Section 4).
 *
 * SEC-DED corrects single-bit faults inline with no L2 trip and
 * detects all double-bit faults (which parity misses), but pays ~2.4x
 * parity's energy overhead on every access. This bench quantifies the
 * trade across the frequency ladder.
 */

#include <cmath>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 1500, 5);

    for (const std::string app : {"route", "md5"}) {
        double baseEdf = 0.0;
        TextTable table("ECC ablation, app = " + app +
                        " (relative EDF^2)");
        table.header({"Cr", "parity two-strike", "SEC-DED",
                      "SEC-DED corrections", "parity trips"});
        for (const double cr : {1.0, 0.75, 0.5, 0.25}) {
            core::ExperimentConfig cfg;
            cfg.numPackets = opt.packets;
            cfg.trials = opt.trials;
            cfg.cr = cr;
            cfg.scheme = mem::RecoveryScheme::TwoStrike;

            cfg.processor.hierarchy.codec = mem::CheckCodec::Parity;
            const auto parity =
                core::runExperiment(apps::appFactory(app), cfg);
            cfg.processor.hierarchy.codec = mem::CheckCodec::Secded;
            const auto ecc =
                core::runExperiment(apps::appFactory(app), cfg);

            auto edf = [](const core::ExperimentResult &r) {
                return r.energyPerPacketPj *
                       std::pow(r.cyclesPerPacket, 2.0) *
                       std::pow(r.fallibility, 2.0);
            };
            if (baseEdf == 0.0)
                baseEdf = edf(parity);
            table.row({
                TextTable::num(cr, 2),
                TextTable::num(edf(parity) / baseEdf, 3),
                TextTable::num(edf(ecc) / baseEdf, 3),
                std::to_string(ecc.faulty.eccCorrections),
                std::to_string(parity.faulty.parityTrips),
            });
        }
        opt.print(table);
    }
    std::puts("takeaway: at the paper's fault rates, faults are too "
              "rare for inline correction to buy back SEC-DED's "
              "per-access energy overhead — the paper's parity choice "
              "wins on the EDF^2 metric at every operating point.");
    return 0;
}
