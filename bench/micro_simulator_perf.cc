/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * cache hit reads, fault-injector sampling, radix lookups, and one
 * full route packet. These guard the simulator's own performance
 * (host side), not the modeled machine.
 */

#include <benchmark/benchmark.h>

#include "apps/app.hh"
#include "apps/radix_tree.hh"
#include "common/logging.hh"
#include "core/processor.hh"
#include "fault/injector.hh"
#include "net/trace_gen.hh"

using namespace clumsy;

namespace
{

void
BM_CacheHitRead(benchmark::State &state)
{
    core::ClumsyProcessor proc;
    const SimAddr addr = proc.alloc(64, 64);
    proc.write32(addr, 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(proc.read32(addr));
}
BENCHMARK(BM_CacheHitRead);

void
BM_CacheMissRead(benchmark::State &state)
{
    core::ClumsyProcessor proc;
    const SimAddr base = proc.alloc(1u << 20, 128);
    SimAddr addr = base;
    for (auto _ : state) {
        benchmark::DoNotOptimize(proc.read32(addr));
        addr = base + ((addr - base + 4096 + 32) & ((1u << 20) - 1));
    }
}
BENCHMARK(BM_CacheMissRead);

void
BM_InjectorCorrupt(benchmark::State &state)
{
    fault::FaultInjector injector{fault::FaultModel{}, 7};
    injector.setCycleTime(0.25);
    std::uint32_t v = 0x12345678;
    for (auto _ : state) {
        v = injector.corrupt(v, 32);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_InjectorCorrupt);

void
BM_RadixLookup(benchmark::State &state)
{
    core::ClumsyProcessor proc;
    apps::RadixTree tree(proc);
    Rng rng(3);
    std::vector<std::uint32_t> keys;
    for (int i = 0; i < 1024; ++i) {
        keys.push_back(static_cast<std::uint32_t>(rng.next()));
        tree.insert(proc, keys.back(), i);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.lookup(proc, keys[i++ & 1023]));
    }
}
BENCHMARK(BM_RadixLookup);

void
BM_RoutePacket(benchmark::State &state)
{
    setQuiet(true);
    auto app = apps::makeApp("route");
    core::ClumsyProcessor proc;
    app->initialize(proc);
    net::TraceConfig tc = app->traceConfig();
    net::TraceGenerator gen(tc);
    core::ValueRecorder rec;
    for (auto _ : state) {
        const net::Packet pkt = gen.next();
        rec.beginPacket();
        app->processPacket(proc, pkt, rec);
    }
}
BENCHMARK(BM_RoutePacket);

} // namespace

BENCHMARK_MAIN();
