/**
 * @file
 * Ablation: epoch length of the dynamic frequency controller. The
 * paper fixes the decision interval at 100 packets; this bench sweeps
 * it for route (two-strike) and reports relative EDF^2, frequency
 * switches, and the mean relative cycle time the controller settles
 * at.
 */

#include <cmath>

#include "apps/app.hh"
#include "bench/bench_common.hh"
#include "core/experiment.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    const bench::Options opt(argc, argv, 2000, 4);

    // Baseline: Cr = 1, no detection.
    core::ExperimentConfig base;
    base.numPackets = opt.packets;
    base.trials = opt.trials;
    base.scheme = mem::RecoveryScheme::NoDetection;
    const auto baseRes =
        core::runExperiment(apps::appFactory("route"), base);
    const double baseEdf = baseRes.energyPerPacketPj *
                           std::pow(baseRes.cyclesPerPacket, 2) *
                           std::pow(baseRes.fallibility, 2);

    TextTable table("Epoch-length ablation, route + two-strike "
                    "dynamic");
    table.header({"epoch [pkts]", "rel EDF^2", "freq switches",
                  "fallibility"});
    for (const unsigned epoch : {25u, 50u, 100u, 200u, 400u}) {
        core::ExperimentConfig cfg;
        cfg.numPackets = opt.packets;
        cfg.trials = opt.trials;
        cfg.dynamicFrequency = true;
        cfg.scheme = mem::RecoveryScheme::TwoStrike;
        cfg.processor.freqCtl.epochPackets = epoch;
        const auto res =
            core::runExperiment(apps::appFactory("route"), cfg);
        const double edf = res.energyPerPacketPj *
                           std::pow(res.cyclesPerPacket, 2) *
                           std::pow(res.fallibility, 2);
        table.row({
            std::to_string(epoch),
            TextTable::num(edf / baseEdf, 3),
            std::to_string(res.faulty.freqSwitches),
            TextTable::num(res.fallibility, 4),
        });
    }
    opt.print(table);
    std::puts("paper setting: 100-packet epochs.");
    return 0;
}
