/**
 * @file
 * clumsy_faultmap: generate, inspect, canonicalize and diff weak-cell
 * fault maps (src/fault/fault_map.hh).
 *
 *   clumsy_faultmap generate --out map.txt --seed 7 --ways 4
 *   clumsy_faultmap inspect map.txt
 *   clumsy_faultmap rewrite map.txt --out canonical.txt
 *   clumsy_faultmap diff before.txt after.txt
 *
 * `rewrite` parses a map and re-emits the canonical text form; for a
 * file already in canonical form the output is byte-identical, which
 * the test suite uses as the round-trip check. `diff` exits 0 when the
 * two maps are identical and 1 otherwise, so scripts can use it as a
 * predicate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "fault/fault_map.hh"

using namespace clumsy;

namespace
{

/** Shared geometry/model options for generate. */
struct GenerateOptions
{
    fault::FaultMapGeometry geom;
    fault::FaultMapParams params;
    std::uint64_t seed = fault::FaultMapSpec{}.seed;
    std::string out;
};

int
cmdGenerate(int argc, char **argv)
{
    GenerateOptions opt;
    cli::ArgParser parser(
        "clumsy_faultmap generate",
        "Generate a weak-cell map from the seeded spatial model and "
        "write the canonical text form.");
    parser.section("output");
    parser.optString("--out", "FILE",
                     "write the map here (default: stdout)", &opt.out);
    parser.section("array geometry");
    parser.option("--sets", "N", "cache sets (default 128)",
                  [&opt](const std::string &v) {
                      opt.geom.sets = static_cast<std::uint32_t>(
                          cli::parseU64("sets", v));
                  });
    parser.option("--ways", "N", "cache ways (default 1)",
                  [&opt](const std::string &v) {
                      opt.geom.ways = static_cast<std::uint32_t>(
                          cli::parseU64("ways", v));
                  });
    parser.option("--line-bytes", "N", "line size in bytes (default 32)",
                  [&opt](const std::string &v) {
                      opt.geom.lineBytes = static_cast<std::uint32_t>(
                          cli::parseU64("line-bytes", v));
                  });
    parser.section("spatial model");
    parser.optU64("--seed", "N", "generation seed", &opt.seed);
    parser.optDouble("--clusters", "X",
                     "mean weak-row clusters per array (default 6)",
                     &opt.params.clustersPerArray);
    parser.optDouble("--cells-per-cluster", "X",
                     "mean weak cells per cluster (default 24)",
                     &opt.params.cellsPerCluster);
    parser.optDouble("--row-sigma", "X",
                     "gaussian row spread of a cluster (default 1.2)",
                     &opt.params.clusterRowSigma);
    parser.optDouble("--background", "X",
                     "mean isolated weak cells per array (default 8)",
                     &opt.params.backgroundPerArray);
    parser.optDouble("--way-sigma", "X",
                     "lognormal per-way strength sigma (default 0.5)",
                     &opt.params.waySigma);
    parser.optDouble("--vth-mean", "X",
                     "mean activation threshold (default 0.55)",
                     &opt.params.vthMean);
    parser.optDouble("--vth-sigma", "X",
                     "activation threshold sigma (default 0.15)",
                     &opt.params.vthSigma);
    parser.optDouble("--pfail-min", "X",
                     "log-uniform pFail lower bound (default 1e-3)",
                     &opt.params.pFailMin);
    parser.optDouble("--pfail-max", "X",
                     "log-uniform pFail upper bound (default 0.2)",
                     &opt.params.pFailMax);
    parser.parse(argc, argv);

    if (opt.geom.sets == 0 || opt.geom.ways == 0 ||
        opt.geom.lineBytes == 0 || opt.geom.lineBytes % 4 != 0)
        fatal("geometry must have sets >= 1, ways >= 1 and a "
              "word-multiple line size");

    const fault::FaultMap map =
        fault::FaultMap::generate(opt.geom, opt.params, opt.seed);
    if (opt.out.empty()) {
        std::fputs(map.toText().c_str(), stdout);
        return 0;
    }
    const std::string err = map.saveFile(opt.out);
    if (!err.empty())
        fatal("%s", err.c_str());
    std::printf("wrote %zu weak cells to %s\n", map.cells().size(),
                opt.out.c_str());
    return 0;
}

int
cmdInspect(int argc, char **argv)
{
    std::string path;
    bool csv = false;
    cli::ArgParser parser(
        "clumsy_faultmap inspect",
        "Summarize a map: geometry, per-way counts, row clustering "
        "and the activation profile across the paper's Cr points.");
    parser.positional("FILE", "map file to inspect",
                      [&path](const std::string &v) {
                          if (!path.empty())
                              fatal("inspect takes one map file");
                          path = v;
                      });
    parser.section("output");
    parser.flag("--csv", "CSV tables", &csv);
    parser.parse(argc, argv);
    if (path.empty())
        fatal("inspect needs a map file (try --help)");

    fault::FaultMap map;
    const std::string err = fault::FaultMap::loadFile(path, map);
    if (!err.empty())
        fatal("%s", err.c_str());

    const auto &geom = map.geometry();
    TextTable table("fault map: " + path);
    table.header({"quantity", "value"});
    table.row({"geometry", std::to_string(geom.sets) + " sets x " +
                               std::to_string(geom.ways) + " ways x " +
                               std::to_string(geom.lineBytes) + " B"});
    table.row({"seed", std::to_string(map.seed())});
    table.row({"weak cells", std::to_string(map.cells().size())});
    table.row({"weak-cell bit fraction",
               TextTable::sci(geom.bits() == 0
                                  ? 0.0
                                  : static_cast<double>(
                                        map.cells().size()) /
                                        static_cast<double>(geom.bits()),
                              2)});
    table.row({"row dispersion index",
               TextTable::num(map.dispersionIndex(), 2)});
    const auto perWay = map.perWayCounts();
    for (std::size_t w = 0; w < perWay.size(); ++w)
        table.row({"cells in way " + std::to_string(w),
                   std::to_string(perWay[w])});
    std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);

    TextTable act("active cells by cycle time");
    act.header({"Cr", "active", "fraction"});
    for (const double cr : {1.0, 0.75, 0.5, 0.25}) {
        const std::size_t active = map.activeCellCount(cr);
        act.row({TextTable::num(cr, 2), std::to_string(active),
                 TextTable::num(map.cells().empty()
                                    ? 0.0
                                    : static_cast<double>(active) /
                                          static_cast<double>(
                                              map.cells().size()),
                                3)});
    }
    std::fputs((csv ? act.csv() : act.render()).c_str(), stdout);
    return 0;
}

int
cmdRewrite(int argc, char **argv)
{
    std::string path, out;
    cli::ArgParser parser(
        "clumsy_faultmap rewrite",
        "Parse a map and re-emit the canonical text form (the "
        "round-trip identity for files already canonical).");
    parser.positional("FILE", "map file to canonicalize",
                      [&path](const std::string &v) {
                          if (!path.empty())
                              fatal("rewrite takes one map file");
                          path = v;
                      });
    parser.section("output");
    parser.optString("--out", "FILE",
                     "write the canonical form here (default: stdout)",
                     &out);
    parser.parse(argc, argv);
    if (path.empty())
        fatal("rewrite needs a map file (try --help)");

    fault::FaultMap map;
    const std::string err = fault::FaultMap::loadFile(path, map);
    if (!err.empty())
        fatal("%s", err.c_str());
    if (out.empty()) {
        std::fputs(map.toText().c_str(), stdout);
        return 0;
    }
    const std::string werr = map.saveFile(out);
    if (!werr.empty())
        fatal("%s", werr.c_str());
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    std::vector<std::string> paths;
    cli::ArgParser parser(
        "clumsy_faultmap diff",
        "Compare two maps cell by cell; exit 0 when identical, 1 "
        "otherwise.");
    parser.positional("A B", "the two map files to compare",
                      [&paths](const std::string &v) {
                          if (paths.size() == 2)
                              fatal("diff takes exactly two map files");
                          paths.push_back(v);
                      });
    parser.parse(argc, argv);
    if (paths.size() != 2)
        fatal("diff takes exactly two map files (try --help)");

    fault::FaultMap a, b;
    for (int i = 0; i < 2; ++i) {
        const std::string err =
            fault::FaultMap::loadFile(paths[i], i == 0 ? a : b);
        if (!err.empty())
            fatal("%s", err.c_str());
    }

    if (!(a.geometry() == b.geometry())) {
        std::printf("geometry differs: %ux%u/%uB vs %ux%u/%uB\n",
                    a.geometry().sets, a.geometry().ways,
                    a.geometry().lineBytes, b.geometry().sets,
                    b.geometry().ways, b.geometry().lineBytes);
        return 1;
    }

    // Both cell lists are sorted by (set, way, bit), so one merge pass
    // classifies every cell.
    std::size_t onlyA = 0, onlyB = 0, changed = 0, same = 0;
    const auto &ca = a.cells();
    const auto &cb = b.cells();
    std::size_t i = 0, j = 0;
    const auto key = [](const fault::WeakCell &c) {
        return (std::uint64_t{c.set} << 40) | (std::uint64_t{c.way} << 20) |
               c.bit;
    };
    while (i < ca.size() || j < cb.size()) {
        if (j == cb.size() || (i < ca.size() && key(ca[i]) < key(cb[j]))) {
            ++onlyA;
            ++i;
        } else if (i == ca.size() || key(cb[j]) < key(ca[i])) {
            ++onlyB;
            ++j;
        } else {
            if (ca[i].vth == cb[j].vth && ca[i].pFail == cb[j].pFail)
                ++same;
            else
                ++changed;
            ++i;
            ++j;
        }
    }

    const bool identical = onlyA == 0 && onlyB == 0 && changed == 0 &&
                           a.seed() == b.seed();
    std::printf("%zu shared, %zu strength-changed, %zu only in %s, "
                "%zu only in %s%s\n",
                same, changed, onlyA, paths[0].c_str(), onlyB,
                paths[1].c_str(),
                a.seed() != b.seed() ? " (seeds differ)" : "");
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    const std::string cmd = argc > 1 ? argv[1] : "";
    // Each subcommand parses its own argv tail; shifting by one keeps
    // the shared ArgParser machinery (--help, unknown-option
    // diagnostics) working per subcommand.
    if (cmd == "generate")
        return cmdGenerate(argc - 1, argv + 1);
    if (cmd == "inspect")
        return cmdInspect(argc - 1, argv + 1);
    if (cmd == "rewrite")
        return cmdRewrite(argc - 1, argv + 1);
    if (cmd == "diff")
        return cmdDiff(argc - 1, argv + 1);
    if (cmd.empty() || cmd == "--help" || cmd == "-h") {
        std::fputs(
            "usage: clumsy_faultmap <generate|inspect|rewrite|diff> "
            "[options]\n"
            "  generate  build a map from the seeded spatial model\n"
            "  inspect   summarize a map file\n"
            "  rewrite   re-emit a map in canonical text form\n"
            "  diff      compare two maps (exit 0 iff identical)\n"
            "run 'clumsy_faultmap <command> --help' for options\n",
            cmd.empty() ? stderr : stdout);
        return cmd.empty() ? 1 : 0;
    }
    fatal("unknown command '%s' (valid choices: generate, inspect, "
          "rewrite, diff)",
          cmd.c_str());
}
