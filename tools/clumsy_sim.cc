/**
 * @file
 * clumsy_sim: command-line driver for the simulator.
 *
 * Run any workload under any operating point and print the full
 * result set (golden stats, fallibility, energy, fatal hazard, error
 * breakdown), dump or replay packet traces, and inspect raw
 * simulator counters.
 *
 *   clumsy_sim --app route --cr 0.5 --scheme two-strike
 *   clumsy_sim --app md5 --dynamic --packets 5000 --trials 8
 *   clumsy_sim --app url --codec secded --stats
 *   clumsy_sim --app nat --cr 0.5 --json
 *   clumsy_sim --app crc --dump-trace crc.trace --packets 1000
 *   clumsy_sim --app crc --replay crc.trace --cr 0.25
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "apps/app.hh"
#include "apps/session.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "ctrl/ctrl.hh"
#include "net/trace_gen.hh"
#include "net/trace_io.hh"
#include "sweep/json.hh"
#include "sweep/sink.hh"
#include "sweep/spec.hh"
#include "traffic/traffic.hh"

using namespace clumsy;

namespace
{

/** One faulty pass over a saved trace, no golden comparison. */
int
replay(const core::AppFactory &factory, const std::string &path,
       const core::ExperimentConfig &cfg, bool stats)
{
    const auto trace = net::loadTrace(path);
    auto instance = factory();
    core::ProcessorConfig pc = cfg.processor;
    pc.staticCr = cfg.cr;
    pc.dynamicFrequency = cfg.dynamicFrequency;
    pc.hierarchy.scheme = cfg.scheme;
    pc.faultModel.scale = cfg.faultScale;
    pc.faultSeed = cfg.faultSeed;
    core::ClumsyProcessor proc(pc);
    instance->initialize(proc);
    core::ValueRecorder rec;
    std::uint64_t processed = 0;
    for (const auto &pkt : trace) {
        if (proc.fatalOccurred())
            break;
        proc.beginPacket();
        rec.beginPacket();
        instance->processPacket(proc, pkt, rec);
        if (proc.fatalOccurred())
            break; // this packet never completed: don't count it
        proc.endPacket();
        ++processed;
    }
    // A replay whose first packet dies has no completed packets, so
    // per-packet quantities are reported as 0 rather than dividing
    // the totals by a clamped count.
    const double cyclesPerPkt =
        processed ? proc.nowCycles() / static_cast<double>(processed)
                  : 0.0;
    const double energyPerPktUj =
        processed ? proc.totalEnergyPj() * 1e-6 /
                        static_cast<double>(processed)
                  : 0.0;
    std::printf("replayed %llu/%zu packets, cycles/pkt %.1f, "
                "energy/pkt %.3f uJ, faults %llu%s\n",
                static_cast<unsigned long long>(processed),
                trace.size(), cyclesPerPkt, energyPerPktUj,
                static_cast<unsigned long long>(
                    proc.injector().faultCount()),
                proc.fatalOccurred()
                    ? (" — FATAL: " + proc.fatalReason()).c_str()
                    : "");
    // The fault breakdown is the whole point of a replay run: print
    // it always, not only under --stats.
    std::fputs(proc.injector().stats().dump().c_str(), stdout);
    if (stats) {
        std::fputs(proc.hierarchy().stats().dump().c_str(), stdout);
        std::fputs(proc.hierarchy().l1d().stats().dump().c_str(),
                   stdout);
    }
    // An aborted replay is a failed run: scripts driving replays need
    // the exit code to distinguish "survived the trace" from "died".
    return proc.fatalOccurred() ? 1 : 0;
}

/** Machine-readable output: config + the sweep result serializer. */
void
printJson(const std::string &app, const core::ExperimentConfig &cfg,
          const core::ExperimentResult &res)
{
    std::string out = "{\n";
    out += "  \"app\": \"" + sweep::jsonEscape(app) + "\",\n";
    out += "  \"cr\": " + sweep::jsonNumber(cfg.cr) + ",\n";
    out += std::string("  \"dynamic\": ") +
           (cfg.dynamicFrequency ? "true" : "false") + ",\n";
    out += "  \"scheme\": \"" + sweep::schemeName(cfg.scheme) + "\",\n";
    out += "  \"codec\": \"" +
           sweep::codecName(cfg.processor.hierarchy.codec) + "\",\n";
    out += "  \"plane\": \"" + sweep::planeName(cfg.plane) + "\",\n";
    out += "  \"fault_scale\": " + sweep::jsonNumber(cfg.faultScale) +
           ",\n";
    // Echoed only when on, so off-mode JSON stays byte-identical to
    // pre-faultmap output (same contract as the ctrl block below).
    if (cfg.processor.faultMap.enabled()) {
        const auto &fm = cfg.processor.faultMap;
        out += "  \"fault_map\": \"" +
               sweep::jsonEscape(fm.mode == fault::FaultMapMode::File
                                     ? fm.path
                                     : fault::to_string(fm.mode)) +
               "\",\n";
        out += "  \"map_seed\": " + std::to_string(fm.seed) + ",\n";
    }
    if (cfg.processor.hierarchy.wayDisable.enabled())
        out += "  \"way_retire\": " +
               std::to_string(
                   cfg.processor.hierarchy.wayDisable.retireThreshold) +
               ",\n";
    if (cfg.ctrl.rate != 0) {
        out += "  \"ctrl\": " + std::to_string(cfg.ctrl.rate) + ",\n";
        out += "  \"updates\": \"" + ctrl::to_string(cfg.ctrl.mix) +
               "\",\n";
    }
    out += "  \"packets\": " + std::to_string(cfg.numPackets) + ",\n";
    out += "  \"trials\": " + std::to_string(cfg.trials) + ",\n";
    out += "  \"seed\": " + std::to_string(cfg.traceSeed) + ",\n";
    out += "  \"fault_seed\": " + std::to_string(cfg.faultSeed) + ",\n";
    out += "  \"result\": " + sweep::experimentResultJson(res) + "\n";
    out += "}\n";
    std::fputs(out.c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string app, dumpTrace, replayTrace, faultMapText = "off";
    core::ExperimentConfig cfg;
    cfg.numPackets = 2000;
    cfg.trials = 4;
    apps::SessionParams sess;
    std::uint64_t mapSeed = fault::FaultMapSpec{}.seed;
    unsigned wayRetire = 0;
    bool stats = false, csv = false, json = false;

    cli::ArgParser parser(
        "clumsy_sim",
        "Run one workload under one operating point and report the "
        "full result set.");
    parser.section("workload");
    parser.optString("--app", "NAME",
                     "crc tl route drr nat md5 url (paper) + adpcm "
                     "session lpm",
                     &app);
    parser.section("traffic");
    parser.option("--flows", "N",
                  "live flow population override (default: the app's)",
                  [&cfg](const std::string &v) {
                      const std::uint64_t n = cli::parseU64("flows", v);
                      if (n == 0)
                          fatal("flows must be >= 1");
                      cfg.traceFlows = static_cast<std::uint32_t>(n);
                  });
    parser.optU64("--churn", "N",
                  "mean flow lifetime in packets; forces the churn "
                  "traffic model on (default: the app's own setting)",
                  &cfg.churnLifetime);
    parser.option("--ctrl-rate", "N",
                  "control-plane updates per 1000 packets "
                  "(default 0 = no control plane)",
                  [&cfg](const std::string &v) {
                      cfg.ctrl.rate = static_cast<std::uint32_t>(
                          cli::parseU64("ctrl-rate", v));
                  });
    parser.option("--ctrl-mix", "M",
                  "control-plane event mix: fib | nat | session | all "
                  "(default all)",
                  [&cfg](const std::string &v) {
                      cfg.ctrl.mix = ctrl::mixFromString(v);
                  });
    parser.option("--flow-zipf", "X",
                  "flow-popularity Zipf exponent (default: the app's)",
                  [&cfg](const std::string &v) {
                      const double x = cli::parseDouble("flow-zipf", v);
                      if (x < 0.0)
                          fatal("flow-zipf must be >= 0, got %s",
                                v.c_str());
                      cfg.flowZipf = x;
                  });
    parser.option("--session-capacity", "N",
                  "session app: table slots (default 1024)",
                  [&sess](const std::string &v) {
                      const std::uint64_t n =
                          cli::parseU64("session-capacity", v);
                      if (n == 0)
                          fatal("session capacity must be >= 1");
                      sess.capacity = static_cast<std::uint32_t>(n);
                  });
    parser.option("--session-timeout", "N",
                  "session app: idle timeout in packets (default 4096)",
                  [&sess](const std::string &v) {
                      const std::uint64_t n =
                          cli::parseU64("session-timeout", v);
                      if (n == 0)
                          fatal("session timeout must be >= 1");
                      sess.timeoutPackets =
                          static_cast<std::uint32_t>(n);
                  });
    parser.section("operating point");
    parser.optDouble("--cr", "X",
                     "relative cycle time (1, 0.75, 0.5, 0.25)",
                     &cfg.cr);
    parser.flag("--dynamic", "use the dynamic frequency controller",
                [&cfg]() { cfg.dynamicFrequency = true; });
    parser.option("--scheme", "S",
                  "no-detection | one-strike | two-strike | "
                  "three-strike (default: no-detection)",
                  [&cfg](const std::string &v) {
                      cfg.scheme = sweep::schemeFromName(v);
                  });
    parser.option("--codec", "C", "parity | secded (default: parity)",
                  [&cfg](const std::string &v) {
                      cfg.processor.hierarchy.codec =
                          sweep::codecFromString(v);
                  });
    parser.flag("--subblock", "sub-block strike recovery", [&cfg]() {
        cfg.processor.hierarchy.subBlockRecovery = true;
    });
    parser.optString("--fault-map", "MAP",
                     "weak-cell map: off | spatial | FILE "
                     "(default off = uniform eq. (4) faults)",
                     &faultMapText);
    parser.optU64("--fault-map-seed", "N",
                  "map generation seed (spatial mode)", &mapSeed);
    parser.optUnsigned("--way-retire", "N",
                       "retire an L1D way after N strike-outs "
                       "(default 0 = never)",
                       &wayRetire);
    parser.section("experiment");
    parser.optU64("--packets", "N", "packets per run (default 2000)",
                  &cfg.numPackets);
    parser.optUnsigned("--trials", "N", "faulty trials (default 4)",
                       &cfg.trials);
    parser.option("--plane", "P", "both | control | data (default both)",
                  [&cfg](const std::string &v) {
                      cfg.plane = sweep::planeFromString(v);
                  });
    parser.optDouble("--fault-scale", "X",
                     "fault-rate multiplier (default 1)",
                     &cfg.faultScale);
    parser.optU64("--seed", "N", "trace seed", &cfg.traceSeed);
    parser.optU64("--fault-seed", "N", "fault-stream seed",
                  &cfg.faultSeed);
    parser.section("traces");
    parser.optString("--dump-trace", "FILE",
                     "write the app's generated trace and exit",
                     &dumpTrace);
    parser.optString("--replay", "FILE",
                     "run one faulty pass over a saved trace",
                     &replayTrace);
    parser.section("output");
    parser.flag("--stats", "dump raw simulator counters", &stats);
    parser.flag("--csv", "CSV tables", &csv);
    parser.flag("--json",
                "machine-readable JSON (same result schema as "
                "clumsy_sweep)",
                &json);
    parser.parse(argc, argv);

    if (app.empty())
        fatal("--app is required (try --help)");

    // Applied after parsing so --fault-map and --fault-map-seed
    // compose in either order.
    cfg.processor.faultMap = fault::faultMapSpecFromString(faultMapText);
    cfg.processor.faultMap.seed = mapSeed;
    cfg.processor.hierarchy.wayDisable.retireThreshold = wayRetire;

    // The session app is the one workload with CLI-tunable knobs; all
    // others come from the stock factory.
    const core::AppFactory factory =
        app == "session"
            ? core::AppFactory([sess] {
                  return std::make_unique<apps::SessionApp>(sess);
              })
            : apps::appFactory(app);

    if (!dumpTrace.empty()) {
        // Stream the trace straight to disk: packet counts beyond
        // memory are fine, exactly like the harnesses' own sources.
        const auto probe = factory();
        const auto src = traffic::makeSource(
            core::resolveTraceConfig(cfg, *probe), 0);
        std::ofstream os(dumpTrace);
        if (!os)
            fatal("cannot write trace file '%s'", dumpTrace.c_str());
        net::writeTraceHeader(os);
        for (std::uint64_t i = 0; i < cfg.numPackets; ++i)
            net::writePacket(os, src->next());
        if (!os.flush())
            fatal("short write to trace file '%s'", dumpTrace.c_str());
        std::printf("wrote %llu packets to %s\n",
                    static_cast<unsigned long long>(cfg.numPackets),
                    dumpTrace.c_str());
        return 0;
    }

    if (!replayTrace.empty())
        return replay(factory, replayTrace, cfg, stats);

    const auto res = core::runExperiment(factory, cfg);

    if (json) {
        printJson(app, cfg, res);
        return 0;
    }

    TextTable table("clumsy_sim: " + app + " @ Cr=" +
                    TextTable::num(cfg.cr, 2) +
                    (cfg.dynamicFrequency ? " (dynamic)" : "") + ", " +
                    to_string(cfg.scheme));
    table.header({"metric", "golden", "faulty (avg)"});
    table.row({"packets processed",
               std::to_string(res.golden.packetsProcessed),
               std::to_string(res.faulty.packetsProcessed)});
    table.row({"cycles / packet",
               TextTable::num(res.golden.cyclesPerPacket, 1),
               TextTable::num(res.cyclesPerPacket, 1)});
    table.row({"energy / packet [uJ]",
               TextTable::num(res.golden.energyPerPacketPj * 1e-6, 3),
               TextTable::num(res.energyPerPacketPj * 1e-6, 3)});
    table.row({"D-cache miss rate [%]",
               TextTable::num(res.golden.dcacheMissRate * 100, 2), "-"});
    table.row({"fallibility", "1.0000",
               TextTable::num(res.fallibility, 4)});
    table.row({"fatal hazard / packet", "0",
               TextTable::sci(res.fatalProb, 2)});
    table.row({"faults injected", "0",
               std::to_string(res.faulty.faultsInjected)});
    table.row({"parity trips", "0",
               std::to_string(res.faulty.parityTrips)});
    table.row({"ECC corrections", "0",
               std::to_string(res.faulty.eccCorrections)});
    std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);

    if (!res.errorProbByType.empty()) {
        TextTable errs("error probability by marked value");
        errs.header({"marked value", "P(error)"});
        for (const auto &kv : res.errorProbByType)
            errs.row({kv.first, TextTable::num(kv.second, 6)});
        std::fputs((csv ? errs.csv() : errs.render()).c_str(), stdout);
    }
    return 0;
}
