/**
 * @file
 * clumsy_sim: command-line driver for the simulator.
 *
 * Run any workload under any operating point and print the full
 * result set (golden stats, fallibility, energy, fatal hazard, error
 * breakdown), dump or replay packet traces, and inspect raw
 * simulator counters.
 *
 *   clumsy_sim --app route --cr 0.5 --scheme two-strike
 *   clumsy_sim --app md5 --dynamic --packets 5000 --trials 8
 *   clumsy_sim --app url --codec secded --stats
 *   clumsy_sim --app crc --dump-trace crc.trace --packets 1000
 *   clumsy_sim --app crc --replay crc.trace --cr 0.25
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/app.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "net/trace_gen.hh"
#include "net/trace_io.hh"

using namespace clumsy;

namespace
{

void
usage()
{
    std::puts(
        "usage: clumsy_sim --app NAME [options]\n"
        "\n"
        "workloads: crc tl route drr nat md5 url (paper) + adpcm\n"
        "\n"
        "operating point:\n"
        "  --cr X              relative cycle time (1, 0.75, 0.5, 0.25)\n"
        "  --dynamic           use the dynamic frequency controller\n"
        "  --scheme S          no-detection | one-strike | two-strike |\n"
        "                      three-strike (default: no-detection)\n"
        "  --codec C           parity | secded (default: parity)\n"
        "  --subblock          sub-block strike recovery\n"
        "\n"
        "experiment:\n"
        "  --packets N         packets per run (default 2000)\n"
        "  --trials N          faulty trials (default 4)\n"
        "  --plane P           both | control | data (default both)\n"
        "  --fault-scale X     fault-rate multiplier (default 1)\n"
        "  --seed N            trace seed\n"
        "  --fault-seed N      fault-stream seed\n"
        "\n"
        "traces:\n"
        "  --dump-trace FILE   write the app's generated trace and exit\n"
        "  --replay FILE       run one faulty pass over a saved trace\n"
        "\n"
        "output:\n"
        "  --stats             dump raw simulator counters\n"
        "  --csv               CSV tables\n");
}

mem::RecoveryScheme
parseScheme(const std::string &s)
{
    return mem::recoverySchemeFromString(
        s == "no-detection" ? "no detection" : s);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string app, dumpTrace, replayTrace;
    core::ExperimentConfig cfg;
    cfg.numPackets = 2000;
    cfg.trials = 4;
    bool stats = false, csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--app") {
            app = value();
        } else if (arg == "--cr") {
            cfg.cr = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--dynamic") {
            cfg.dynamicFrequency = true;
        } else if (arg == "--scheme") {
            cfg.scheme = parseScheme(value());
        } else if (arg == "--codec") {
            const std::string c = value();
            if (c == "secded")
                cfg.processor.hierarchy.codec = mem::CheckCodec::Secded;
            else if (c != "parity")
                fatal("unknown codec '%s'", c.c_str());
        } else if (arg == "--subblock") {
            cfg.processor.hierarchy.subBlockRecovery = true;
        } else if (arg == "--packets") {
            cfg.numPackets = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--trials") {
            cfg.trials = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--plane") {
            const std::string p = value();
            if (p == "control")
                cfg.plane = core::FaultPlane::ControlOnly;
            else if (p == "data")
                cfg.plane = core::FaultPlane::DataOnly;
            else if (p != "both")
                fatal("unknown plane '%s'", p.c_str());
        } else if (arg == "--fault-scale") {
            cfg.faultScale = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--seed") {
            cfg.traceSeed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--fault-seed") {
            cfg.faultSeed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--dump-trace") {
            dumpTrace = value();
        } else if (arg == "--replay") {
            replayTrace = value();
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (app.empty()) {
        usage();
        fatal("--app is required");
    }

    if (!dumpTrace.empty()) {
        auto probe = apps::makeApp(app);
        net::TraceConfig tc = probe->traceConfig();
        tc.seed = cfg.traceSeed;
        net::TraceGenerator gen(tc);
        net::saveTrace(dumpTrace, gen.generate(cfg.numPackets));
        std::printf("wrote %llu packets to %s\n",
                    static_cast<unsigned long long>(cfg.numPackets),
                    dumpTrace.c_str());
        return 0;
    }

    if (!replayTrace.empty()) {
        // One direct faulty pass over a saved trace, no golden
        // comparison: for inspecting simulator behavior on captured
        // workloads.
        const auto trace = net::loadTrace(replayTrace);
        auto instance = apps::makeApp(app);
        core::ProcessorConfig pc = cfg.processor;
        pc.staticCr = cfg.cr;
        pc.dynamicFrequency = cfg.dynamicFrequency;
        pc.hierarchy.scheme = cfg.scheme;
        pc.faultModel.scale = cfg.faultScale;
        pc.faultSeed = cfg.faultSeed;
        core::ClumsyProcessor proc(pc);
        instance->initialize(proc);
        core::ValueRecorder rec;
        std::uint64_t processed = 0;
        for (const auto &pkt : trace) {
            if (proc.fatalOccurred())
                break;
            proc.beginPacket();
            rec.beginPacket();
            instance->processPacket(proc, pkt, rec);
            proc.endPacket();
            ++processed;
        }
        std::printf("replayed %llu/%zu packets, cycles/pkt %.1f, "
                    "energy %.2f uJ, faults %llu%s\n",
                    static_cast<unsigned long long>(processed),
                    trace.size(),
                    proc.nowCycles() /
                        static_cast<double>(processed ? processed : 1),
                    proc.totalEnergyPj() * 1e-6,
                    static_cast<unsigned long long>(
                        proc.injector().faultCount()),
                    proc.fatalOccurred()
                        ? (" — FATAL: " + proc.fatalReason()).c_str()
                        : "");
        if (stats) {
            std::fputs(proc.hierarchy().stats().dump().c_str(), stdout);
            std::fputs(proc.hierarchy().l1d().stats().dump().c_str(),
                       stdout);
            std::fputs(proc.injector().stats().dump().c_str(), stdout);
        }
        return 0;
    }

    const auto res = core::runExperiment(apps::appFactory(app), cfg);

    TextTable table("clumsy_sim: " + app + " @ Cr=" +
                    TextTable::num(cfg.cr, 2) +
                    (cfg.dynamicFrequency ? " (dynamic)" : "") + ", " +
                    to_string(cfg.scheme));
    table.header({"metric", "golden", "faulty (avg)"});
    table.row({"packets processed",
               std::to_string(res.golden.packetsProcessed),
               std::to_string(res.faulty.packetsProcessed)});
    table.row({"cycles / packet",
               TextTable::num(res.golden.cyclesPerPacket, 1),
               TextTable::num(res.cyclesPerPacket, 1)});
    table.row({"energy / packet [uJ]",
               TextTable::num(res.golden.energyPerPacketPj * 1e-6, 3),
               TextTable::num(res.energyPerPacketPj * 1e-6, 3)});
    table.row({"D-cache miss rate [%]",
               TextTable::num(res.golden.dcacheMissRate * 100, 2), "-"});
    table.row({"fallibility", "1.0000",
               TextTable::num(res.fallibility, 4)});
    table.row({"fatal hazard / packet", "0",
               TextTable::sci(res.fatalProb, 2)});
    table.row({"faults injected", "0",
               std::to_string(res.faulty.faultsInjected)});
    table.row({"parity trips", "0",
               std::to_string(res.faulty.parityTrips)});
    table.row({"ECC corrections", "0",
               std::to_string(res.faulty.eccCorrections)});
    std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);

    if (!res.errorProbByType.empty()) {
        TextTable errs("error probability by marked value");
        errs.header({"marked value", "P(error)"});
        for (const auto &kv : res.errorProbByType)
            errs.row({kv.first, TextTable::num(kv.second, 6)});
        std::fputs((csv ? errs.csv() : errs.render()).c_str(), stdout);
    }
    return 0;
}
