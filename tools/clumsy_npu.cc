/**
 * @file
 * clumsy_npu: command-line driver for the multi-engine chip model.
 *
 * Runs a workload on an N-engine chip (src/npu/) — each engine a
 * private clumsy processor behind one shared L2 port — and prints the
 * single-core-form experiment results plus the chip-level quantities:
 * throughput at the modeled clock, per-engine utilization and packet
 * counts, queue occupancy, drop/backpressure accounting, shared-port
 * contention and chip ED2F2.
 *
 *   clumsy_npu --app route --pes 4 --cr 0.5 --scheme two-strike
 *   clumsy_npu --app nat --pes 8 --dispatch flow --queue-cap 8
 *   clumsy_npu --app crc --pes 4 --dispatch shortest --drop --json
 *   clumsy_npu --app url --pes 4 --dvs queue --arrival-gap 400
 *   clumsy_npu --app drr --pes 8 --mshrs 4 --scheme two-strike
 *   clumsy_npu --app route --pes 4 --l2 shared --dispatch flow
 *   clumsy_npu --app md5 --pes 1 --dispatch rr   # == clumsy_sim
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/session.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "ctrl/ctrl.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "sweep/json.hh"
#include "sweep/sink.hh"
#include "sweep/spec.hh"

using namespace clumsy;

namespace
{

void
printJson(const std::string &app, const core::ExperimentConfig &cfg,
          const npu::NpuConfig &npuCfg,
          const npu::ChipExperimentResult &res)
{
    std::string perPeCr;
    for (std::size_t i = 0; i < npuCfg.perPeCr.size(); ++i) {
        if (i)
            perPeCr += ":";
        perPeCr += sweep::formatDouble(npuCfg.perPeCr[i]);
    }

    std::string out = "{\n";
    out += "  \"app\": \"" + sweep::jsonEscape(app) + "\",\n";
    out += "  \"cr\": " + sweep::jsonNumber(cfg.cr) + ",\n";
    out += std::string("  \"dynamic\": ") +
           (cfg.dynamicFrequency ? "true" : "false") + ",\n";
    out += "  \"scheme\": \"" + sweep::schemeName(cfg.scheme) + "\",\n";
    out += "  \"codec\": \"" +
           sweep::codecName(cfg.processor.hierarchy.codec) + "\",\n";
    out += "  \"plane\": \"" + sweep::planeName(cfg.plane) + "\",\n";
    out += "  \"fault_scale\": " + sweep::jsonNumber(cfg.faultScale) +
           ",\n";
    // Echoed only when on: off-mode JSON stays byte-identical to
    // pre-faultmap output (same contract as the ctrl block below).
    if (cfg.processor.faultMap.enabled()) {
        const auto &fm = cfg.processor.faultMap;
        out += "  \"fault_map\": \"" +
               sweep::jsonEscape(fm.mode == fault::FaultMapMode::File
                                     ? fm.path
                                     : fault::to_string(fm.mode)) +
               "\",\n";
        out += "  \"map_seed\": " + std::to_string(fm.seed) + ",\n";
    }
    if (cfg.processor.hierarchy.wayDisable.enabled())
        out += "  \"way_retire\": " +
               std::to_string(
                   cfg.processor.hierarchy.wayDisable.retireThreshold) +
               ",\n";
    out += "  \"pes\": " + std::to_string(npuCfg.peCount) + ",\n";
    out += "  \"dispatch\": \"" + npu::to_string(npuCfg.dispatch) +
           "\",\n";
    out += "  \"per_pe_cr\": \"" +
           (perPeCr.empty() ? std::string("uniform") : perPeCr) +
           "\",\n";
    out += "  \"dvs\": \"" + npu::to_string(npuCfg.dvs) + "\",\n";
    out += "  \"mshrs\": " + std::to_string(npuCfg.mshrs) + ",\n";
    out += "  \"l2\": \"" + npu::to_string(npuCfg.l2) + "\",\n";
    out += std::string("  \"flow_rehash\": ") +
           (npuCfg.flowRehash ? "true" : "false") + ",\n";
    out += "  \"queue_cap\": " + std::to_string(npuCfg.queueCapacity) +
           ",\n";
    out += std::string("  \"drop_when_full\": ") +
           (npuCfg.dropWhenFull ? "true" : "false") + ",\n";
    // NpuConfig::chipJobs is deliberately not echoed: it is a host
    // scheduling knob, not part of the modeled chip, and the JSON of
    // --chip-jobs K must stay byte-identical to --chip-jobs 1.
    out += "  \"arrival_gap_cycles\": " +
           std::to_string(npuCfg.arrivalGapCycles) + ",\n";
    if (cfg.ctrl.rate != 0) {
        out += "  \"ctrl\": " + std::to_string(cfg.ctrl.rate) + ",\n";
        out += "  \"updates\": \"" + ctrl::to_string(cfg.ctrl.mix) +
               "\",\n";
    }
    out += "  \"packets\": " + std::to_string(cfg.numPackets) + ",\n";
    out += "  \"trials\": " + std::to_string(cfg.trials) + ",\n";
    out += "  \"seed\": " + std::to_string(cfg.traceSeed) + ",\n";
    out += "  \"fault_seed\": " + std::to_string(cfg.faultSeed) + ",\n";
    out += "  \"result\": " + sweep::experimentResultJson(res.core) +
           ",\n";
    out += "  \"npu\": {\"golden\": " +
           sweep::chipMetricsJson(res.goldenChip) +
           ", \"faulty\": " + sweep::chipMetricsJson(res.faultyChip) +
           "}\n";
    out += "}\n";
    std::fputs(out.c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string app, dispatch = "rr", perPeCrText, dvs = "fault",
                l2 = "private";
    core::ExperimentConfig cfg;
    cfg.numPackets = 2000;
    cfg.trials = 4;
    npu::NpuConfig npuCfg;
    apps::SessionParams sess;
    std::uint64_t arrivalGap = 0;
    std::string faultMapText = "off";
    std::uint64_t mapSeed = fault::FaultMapSpec{}.seed;
    unsigned wayRetire = 0;
    bool drop = false, csv = false, json = false;

    cli::ArgParser parser(
        "clumsy_npu",
        "Run one workload on an N-engine chip behind a shared L2 and "
        "report core results plus chip-level metrics.");
    parser.section("workload");
    parser.optString("--app", "NAME",
                     "crc tl route drr nat md5 url (paper) + adpcm "
                     "session lpm",
                     &app);
    parser.section("traffic");
    parser.option("--flows", "N",
                  "live flow population override (default: the app's)",
                  [&cfg](const std::string &v) {
                      const std::uint64_t n = cli::parseU64("flows", v);
                      if (n == 0)
                          fatal("flows must be >= 1");
                      cfg.traceFlows = static_cast<std::uint32_t>(n);
                  });
    parser.optU64("--churn", "N",
                  "mean flow lifetime in packets; forces the churn "
                  "traffic model on (default: the app's own setting)",
                  &cfg.churnLifetime);
    parser.option("--ctrl-rate", "N",
                  "control-plane updates per 1000 packets "
                  "(default 0 = no control plane)",
                  [&cfg](const std::string &v) {
                      cfg.ctrl.rate = static_cast<std::uint32_t>(
                          cli::parseU64("ctrl-rate", v));
                  });
    parser.option("--ctrl-mix", "M",
                  "control-plane event mix: fib | nat | session | all "
                  "(default all)",
                  [&cfg](const std::string &v) {
                      cfg.ctrl.mix = ctrl::mixFromString(v);
                  });
    parser.option("--flow-zipf", "X",
                  "flow-popularity Zipf exponent (default: the app's)",
                  [&cfg](const std::string &v) {
                      const double x = cli::parseDouble("flow-zipf", v);
                      if (x < 0.0)
                          fatal("flow-zipf must be >= 0, got %s",
                                v.c_str());
                      cfg.flowZipf = x;
                  });
    parser.option("--session-capacity", "N",
                  "session app: table slots (default 1024)",
                  [&sess](const std::string &v) {
                      const std::uint64_t n =
                          cli::parseU64("session-capacity", v);
                      if (n == 0)
                          fatal("session capacity must be >= 1");
                      sess.capacity = static_cast<std::uint32_t>(n);
                  });
    parser.option("--session-timeout", "N",
                  "session app: idle timeout in packets (default 4096)",
                  [&sess](const std::string &v) {
                      const std::uint64_t n =
                          cli::parseU64("session-timeout", v);
                      if (n == 0)
                          fatal("session timeout must be >= 1");
                      sess.timeoutPackets =
                          static_cast<std::uint32_t>(n);
                  });
    parser.section("chip");
    parser.optUnsigned("--pes", "N",
                       "processing engines (default 1)", &npuCfg.peCount);
    parser.optString("--dispatch", "P",
                     "rr | flow | shortest (default rr)", &dispatch);
    parser.optUnsigned("--queue-cap", "N",
                       "per-engine input queue capacity (default 16)",
                       &npuCfg.queueCapacity);
    parser.flag("--drop",
                "drop arrivals when the chosen queue is full "
                "(default: backpressure)",
                &drop);
    parser.optU64("--arrival-gap", "N",
                  "inter-arrival gap, base cycles (default 0 = "
                  "saturated)",
                  &arrivalGap);
    parser.optString("--per-pe-cr", "LIST",
                     "colon-separated per-engine Cr list "
                     "(e.g. 1:0.5:0.5:0.25; default: uniform)",
                     &perPeCrText);
    parser.optString("--dvs", "M",
                     "per-engine frequency adaptation: static | fault "
                     "| queue (default fault)",
                     &dvs);
    parser.optUnsigned("--mshrs", "K",
                       "shared-L2 port MSHRs: transfers that overlap "
                       "before the port serializes (default 1)",
                       &npuCfg.mshrs);
    parser.optString("--l2", "M",
                     "L2 contents: private per engine | shared one "
                     "array chip-wide (default private)",
                     &l2);
    parser.flag("--flow-rehash",
                "flow dispatch: rehash flows off dead engines instead "
                "of dropping their packets",
                [&npuCfg]() { npuCfg.flowRehash = true; });
    parser.optUnsigned("--chip-jobs", "N",
                       "worker threads for one chip run (bring-up + "
                       "trial fan-out); results are byte-identical "
                       "for every value (default 1 = serial, 0 = "
                       "hardware)",
                       &npuCfg.chipJobs);
    parser.section("operating point");
    parser.optDouble("--cr", "X",
                     "relative cycle time (1, 0.75, 0.5, 0.25)",
                     &cfg.cr);
    parser.flag("--dynamic", "use the dynamic frequency controller",
                [&cfg]() { cfg.dynamicFrequency = true; });
    parser.option("--scheme", "S",
                  "no-detection | one-strike | two-strike | "
                  "three-strike (default: no-detection)",
                  [&cfg](const std::string &v) {
                      cfg.scheme = sweep::schemeFromName(v);
                  });
    parser.option("--codec", "C", "parity | secded (default: parity)",
                  [&cfg](const std::string &v) {
                      cfg.processor.hierarchy.codec =
                          sweep::codecFromString(v);
                  });
    parser.flag("--subblock", "sub-block strike recovery", [&cfg]() {
        cfg.processor.hierarchy.subBlockRecovery = true;
    });
    parser.optString("--fault-map", "MAP",
                     "weak-cell map: off | spatial | FILE "
                     "(default off = uniform eq. (4) faults; the chip "
                     "salts the generation seed per engine)",
                     &faultMapText);
    parser.optU64("--fault-map-seed", "N",
                  "map generation seed (spatial mode)", &mapSeed);
    parser.optUnsigned("--way-retire", "N",
                       "retire an L1D way after N strike-outs "
                       "(default 0 = never)",
                       &wayRetire);
    parser.section("experiment");
    parser.optU64("--packets", "N", "packets per run (default 2000)",
                  &cfg.numPackets);
    parser.optUnsigned("--trials", "N", "faulty trials (default 4)",
                       &cfg.trials);
    parser.option("--plane", "P", "both | control | data (default both)",
                  [&cfg](const std::string &v) {
                      cfg.plane = sweep::planeFromString(v);
                  });
    parser.optDouble("--fault-scale", "X",
                     "fault-rate multiplier (default 1)",
                     &cfg.faultScale);
    parser.optU64("--seed", "N", "trace seed", &cfg.traceSeed);
    parser.optU64("--fault-seed", "N", "fault-stream seed",
                  &cfg.faultSeed);
    parser.section("output");
    parser.flag("--csv", "CSV tables", &csv);
    parser.flag("--json",
                "machine-readable JSON (result schema shared with "
                "clumsy_sim/clumsy_sweep)",
                &json);
    parser.parse(argc, argv);

    if (app.empty())
        fatal("--app is required (try --help)");

    cfg.processor.faultMap = fault::faultMapSpecFromString(faultMapText);
    cfg.processor.faultMap.seed = mapSeed;
    cfg.processor.hierarchy.wayDisable.retireThreshold = wayRetire;

    npuCfg.dispatch = npu::dispatchFromString(dispatch);
    npuCfg.dvs = npu::dvsFromString(dvs);
    npuCfg.l2 = npu::l2ModeFromString(l2);
    npuCfg.dropWhenFull = drop;
    npuCfg.arrivalGapCycles = static_cast<std::int64_t>(arrivalGap);
    for (const std::string &piece : cli::split(perPeCrText, ':'))
        npuCfg.perPeCr.push_back(
            cli::parseDouble("--per-pe-cr", piece));

    const core::AppFactory factory =
        app == "session"
            ? core::AppFactory([sess] {
                  return std::make_unique<apps::SessionApp>(sess);
              })
            : apps::appFactory(app);

    const npu::ChipExperimentResult res =
        npu::runChipExperiment(factory, cfg, npuCfg);

    if (json) {
        printJson(app, cfg, npuCfg, res);
        return 0;
    }

    const core::ExperimentResult &r = res.core;
    TextTable table("clumsy_npu: " + app + " on " +
                    std::to_string(npuCfg.peCount) + " PE" +
                    (npuCfg.peCount == 1 ? "" : "s") + " (" +
                    npu::to_string(npuCfg.dispatch) + ") @ Cr=" +
                    TextTable::num(cfg.cr, 2) +
                    (cfg.dynamicFrequency ? " (dynamic)" : "") + ", " +
                    to_string(cfg.scheme));
    table.header({"metric", "golden", "faulty (avg)"});
    table.row({"packets processed",
               std::to_string(r.golden.packetsProcessed),
               std::to_string(r.faulty.packetsProcessed)});
    table.row({"cycles / packet",
               TextTable::num(r.golden.cyclesPerPacket, 1),
               TextTable::num(r.cyclesPerPacket, 1)});
    table.row({"energy / packet [uJ]",
               TextTable::num(r.golden.energyPerPacketPj * 1e-6, 3),
               TextTable::num(r.energyPerPacketPj * 1e-6, 3)});
    table.row({"fallibility", "1.0000",
               TextTable::num(r.fallibility, 4)});
    table.row({"fatal hazard / packet", "0",
               TextTable::sci(r.fatalProb, 2)});
    table.row({"faults injected", "0",
               std::to_string(r.faulty.faultsInjected)});
    std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);

    TextTable chip("chip");
    chip.header({"metric", "golden", "faulty (avg)"});
    chip.row({"makespan [cycles]",
              TextTable::num(res.goldenChip.makespanCycles, 0),
              TextTable::num(res.faultyChip.makespanCycles, 0)});
    chip.row({"throughput [pkt/s]",
              TextTable::num(res.goldenChip.throughputPps, 0),
              TextTable::num(res.faultyChip.throughputPps, 0)});
    chip.row({"load imbalance",
              TextTable::num(res.goldenChip.loadImbalance, 3),
              TextTable::num(res.faultyChip.loadImbalance, 3)});
    chip.row({"queue occupancy (mean)",
              TextTable::num(res.goldenChip.queueOccMean, 2),
              TextTable::num(res.faultyChip.queueOccMean, 2)});
    chip.row({"queue occupancy (max)",
              TextTable::num(res.goldenChip.queueOccMax, 0),
              TextTable::num(res.faultyChip.queueOccMax, 0)});
    chip.row({"drops (queue full)",
              TextTable::num(res.goldenChip.dropsQueueFull, 0),
              TextTable::num(res.faultyChip.dropsQueueFull, 0)});
    chip.row({"drops (dead PE)",
              TextTable::num(res.goldenChip.dropsDeadPe, 0),
              TextTable::num(res.faultyChip.dropsDeadPe, 0)});
    chip.row({"backpressure stalls",
              TextTable::num(res.goldenChip.backpressureStalls, 0),
              TextTable::num(res.faultyChip.backpressureStalls, 0)});
    chip.row({"L2 port waits",
              TextTable::num(res.goldenChip.l2PortWaits, 0),
              TextTable::num(res.faultyChip.l2PortWaits, 0)});
    chip.row({"L2 port wait [cycles]",
              TextTable::num(res.goldenChip.l2PortWaitCycles, 0),
              TextTable::num(res.faultyChip.l2PortWaitCycles, 0)});
    chip.row({"cross-engine L2 hits",
              TextTable::num(res.goldenChip.crossEngineHits, 0),
              TextTable::num(res.faultyChip.crossEngineHits, 0)});
    chip.row({"cross-engine hit fraction",
              TextTable::num(res.goldenChip.crossEngineHitFraction, 4),
              TextTable::num(res.faultyChip.crossEngineHitFraction,
                             4)});
    chip.row({"L2 evictions by other PE",
              TextTable::num(res.goldenChip.l2EvictionsByOther, 0),
              TextTable::num(res.faultyChip.l2EvictionsByOther, 0)});
    chip.row({"MSHR merges",
              TextTable::num(res.goldenChip.mshrMerges, 0),
              TextTable::num(res.faultyChip.mshrMerges, 0)});
    chip.row({"chip ED2F2",
              TextTable::sci(res.goldenChip.chipEdf, 3),
              TextTable::sci(res.faultyChip.chipEdf, 3)});
    std::fputs((csv ? chip.csv() : chip.render()).c_str(), stdout);

    TextTable pes("per-engine (golden)");
    pes.header({"PE", "packets", "utilization"});
    for (std::size_t pe = 0;
         pe < res.goldenChip.peUtilization.size(); ++pe)
        pes.row({std::to_string(pe),
                 TextTable::num(res.goldenChip.pePackets[pe], 0),
                 TextTable::num(res.goldenChip.peUtilization[pe], 3)});
    std::fputs((csv ? pes.csv() : pes.render()).c_str(), stdout);

    TextTable dvsTab("per-engine DVS (faulty avg)");
    dvsTab.header({"PE", "Cr final", "Cr mean", "epochs", "ups",
                   "downs"});
    for (std::size_t pe = 0; pe < res.faultyChip.peCrFinal.size();
         ++pe)
        dvsTab.row({std::to_string(pe),
                    TextTable::num(res.faultyChip.peCrFinal[pe], 3),
                    TextTable::num(res.faultyChip.peCrMean[pe], 3),
                    TextTable::num(res.faultyChip.peEpochs[pe], 1),
                    TextTable::num(res.faultyChip.peStepsUp[pe], 1),
                    TextTable::num(res.faultyChip.peStepsDown[pe],
                                   1)});
    std::fputs((csv ? dvsTab.csv() : dvsTab.render()).c_str(), stdout);

    TextTable occ("queue depth at enqueue (golden)");
    occ.header({"depth", "count"});
    for (unsigned b = 0; b < res.goldenQueueOcc.bins(); ++b) {
        if (res.goldenQueueOcc.binCount(b) == 0)
            continue;
        occ.row({std::to_string(b),
                 std::to_string(res.goldenQueueOcc.binCount(b))});
    }
    std::fputs((csv ? occ.csv() : occ.render()).c_str(), stdout);
    return 0;
}
