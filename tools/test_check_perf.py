#!/usr/bin/env python3
"""Unit coverage for tools/check_perf.py, the CI perf-regression gate.

Exercises the gate's whole verdict surface with canned BENCH_sim.json
fixtures: clean pass, warn-band slowdown, fail-band regression,
divergence (identical=false), cells present on only one side, and
malformed input. Runs the real main() in-process by patching argv, so
the exit statuses tested here are exactly what CI sees.

Stdlib only — no third-party imports.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_perf  # noqa: E402


def cell(name, pps, identical=True):
    return {"name": name, "pps": pps, "identical": identical}


class GateHarness(unittest.TestCase):
    """Write fixtures to temp files and run check_perf.main()."""

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def _write(self, tag, cells, host_threads=None):
        path = os.path.join(self._dir.name, tag + ".json")
        doc = {"cells": cells}
        if host_threads is not None:
            doc["host_threads"] = host_threads
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_gate(self, baseline, fresh, extra_args=()):
        """Return (exit_status, stdout, stderr)."""
        argv = ["check_perf.py", "--baseline", baseline,
                "--fresh", fresh, *extra_args]
        out, err = io.StringIO(), io.StringIO()
        old_argv, sys.argv = sys.argv, argv
        try:
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(err):
                status = check_perf.main()
        finally:
            sys.argv = old_argv
        return status, out.getvalue(), err.getvalue()


class VerdictTest(GateHarness):
    def test_identical_run_passes(self):
        base = self._write("base", [cell("crc", 1000.0),
                                    cell("route", 2000.0)])
        status, out, _ = self.run_gate(base, base)
        self.assertEqual(status, 0)
        self.assertIn("check_perf: pass (0 warning(s))", out)
        self.assertIn("ok   crc", out)

    def test_small_slowdown_warns_but_passes(self):
        base = self._write("base", [cell("crc", 1000.0)])
        fresh = self._write("fresh", [cell("crc", 850.0)])  # 0.85x
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 0)
        self.assertIn("WARN crc", out)
        self.assertIn("pass (1 warning(s))", out)

    def test_large_regression_fails(self):
        base = self._write("base", [cell("crc", 1000.0)])
        fresh = self._write("fresh", [cell("crc", 500.0)])  # 0.50x
        status, out, err = self.run_gate(base, fresh)
        self.assertEqual(status, 1)
        self.assertIn("FAIL crc", out)
        self.assertIn("1 cell(s) regressed past 30%", err)

    def test_speedup_is_a_clean_pass(self):
        base = self._write("base", [cell("crc", 1000.0)])
        fresh = self._write("fresh", [cell("crc", 3000.0)])
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 0)
        self.assertIn("3.00x", out)

    def test_divergence_fails_even_when_fast(self):
        # identical=false means the optimized path produced different
        # results than the reference arm — timing is irrelevant.
        base = self._write("base", [cell("crc", 1000.0)])
        fresh = self._write("fresh",
                            [cell("crc", 9000.0, identical=False)])
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 1)
        self.assertIn("DIVERGED from reference arm", out)

    def test_one_divergence_poisons_a_passing_run(self):
        base = self._write("base", [cell("crc", 1000.0),
                                    cell("route", 2000.0)])
        fresh = self._write("fresh",
                            [cell("crc", 1000.0),
                             cell("route", 2000.0, identical=False)])
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 1)
        self.assertIn("ok   crc", out)
        self.assertIn("route: fast path DIVERGED", out)

    def test_thresholds_are_configurable(self):
        base = self._write("base", [cell("crc", 1000.0)])
        fresh = self._write("fresh", [cell("crc", 850.0)])
        # 0.85x fails when the fail line moves up to 0.9 ...
        status, _, _ = self.run_gate(base, fresh,
                                     ("--fail-below", "0.9",
                                      "--warn-below", "0.95"))
        self.assertEqual(status, 1)
        # ... and passes without a warning when both lines drop.
        status, out, _ = self.run_gate(base, fresh,
                                       ("--fail-below", "0.5",
                                        "--warn-below", "0.6"))
        self.assertEqual(status, 0)
        self.assertIn("pass (0 warning(s))", out)


class HostThreadsTest(GateHarness):
    def test_host_mismatch_downgrades_regression_to_warning(self):
        # A 0.50x regression fails on the same host but only warns
        # when the two documents were measured on different machines.
        base = self._write("base", [cell("crc", 1000.0)],
                           host_threads=8)
        fresh = self._write("fresh", [cell("crc", 500.0)],
                            host_threads=1)
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 0)
        self.assertIn("NOTE host_threads differ (baseline 8, fresh 1)",
                      out)
        self.assertIn("WARN crc", out)
        self.assertIn("[host mismatch: warn only]", out)

    def test_same_host_still_fails(self):
        base = self._write("base", [cell("crc", 1000.0)],
                           host_threads=4)
        fresh = self._write("fresh", [cell("crc", 500.0)],
                            host_threads=4)
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 1)
        self.assertIn("FAIL crc", out)

    def test_absent_host_threads_keeps_hard_gate(self):
        # Documents from before the field existed must not silently
        # lose the hard gate.
        base = self._write("base", [cell("crc", 1000.0)])
        fresh = self._write("fresh", [cell("crc", 500.0)],
                            host_threads=1)
        status, _, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 1)

    def test_host_mismatch_never_excuses_divergence(self):
        base = self._write("base", [cell("crc", 1000.0)],
                           host_threads=8)
        fresh = self._write("fresh",
                            [cell("crc", 1000.0, identical=False)],
                            host_threads=1)
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 1)
        self.assertIn("DIVERGED", out)


class CellSetTest(GateHarness):
    def test_new_cell_without_baseline_passes(self):
        # The cell set may legitimately grow; a fresh cell with no
        # baseline is reported but never gates.
        base = self._write("base", [cell("crc", 1000.0)])
        fresh = self._write("fresh", [cell("crc", 1000.0),
                                      cell("lpm", 700.0)])
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 0)
        self.assertIn("lpm: new cell (no baseline)", out)

    def test_baseline_only_cell_is_reported_not_failed(self):
        base = self._write("base", [cell("crc", 1000.0),
                                    cell("nat", 900.0)])
        fresh = self._write("fresh", [cell("crc", 1000.0)])
        status, out, _ = self.run_gate(base, fresh)
        self.assertEqual(status, 0)
        self.assertIn("nat: in baseline only", out)


class MalformedInputTest(GateHarness):
    def assert_malformed(self, baseline, fresh):
        status, _, err = self.run_gate(baseline, fresh)
        self.assertEqual(status, 2)
        self.assertIn("check_perf:", err)

    def test_missing_file(self):
        base = self._write("base", [cell("crc", 1000.0)])
        self.assert_malformed(base,
                              os.path.join(self._dir.name, "no.json"))

    def test_not_json(self):
        base = self._write("base", [cell("crc", 1000.0)])
        path = os.path.join(self._dir.name, "junk.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("not json {")
        self.assert_malformed(base, path)

    def test_missing_cells_array(self):
        base = self._write("base", [cell("crc", 1000.0)])
        path = os.path.join(self._dir.name, "empty.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"host": "x"}, f)
        self.assert_malformed(base, path)

    def test_cell_without_name_or_pps(self):
        base = self._write("base", [cell("crc", 1000.0)])
        bad = self._write("bad", [{"name": "crc"}])
        self.assert_malformed(base, bad)

    def test_nonpositive_pps(self):
        base = self._write("base", [cell("crc", 1000.0)])
        bad = self._write("badpps", [cell("crc", 0.0)])
        self.assert_malformed(base, bad)


if __name__ == "__main__":
    unittest.main()
