#!/usr/bin/env python3
"""Gate a fresh bench/sim_perf run against the committed BENCH_sim.json.

Compares per-cell host packets/sec: a cell slower than the baseline by
more than --fail-below (default 30%) fails the gate; slower by more
than --warn-below (default 10%) prints a warning. Cells present in only
one file are reported but never fail (the cell set may legitimately
grow). A fresh cell with "identical": false always fails — that means
the optimized path diverged from the reference arm, which no amount of
timing noise can excuse.

When the two documents record different "host_threads" counts the
machines are not comparable: every timing failure is downgraded to a
warning (divergence still fails — determinism does not depend on the
host). This closes the 1-CPU-container caveat: a baseline measured on
a laptop never hard-fails a single-core CI runner, and vice versa.

Exit status: 0 = pass (warnings allowed), 1 = regression or divergence,
2 = malformed input.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    cells = doc.get("cells")
    if not isinstance(cells, list):
        raise ValueError(f"{path}: no 'cells' array")
    out = {}
    for cell in cells:
        name = cell.get("name")
        pps = cell.get("pps")
        if not name or not isinstance(pps, (int, float)) or pps <= 0:
            raise ValueError(f"{path}: malformed cell {cell!r}")
        out[name] = cell
    return out, doc.get("host_threads")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_sim.json")
    ap.add_argument("--fresh", required=True,
                    help="JSON from this run of bench/sim_perf")
    ap.add_argument("--fail-below", type=float, default=0.70,
                    help="fail when fresh pps < RATIO * baseline "
                         "(default 0.70, i.e. >30%% regression)")
    ap.add_argument("--warn-below", type=float, default=0.90,
                    help="warn when fresh pps < RATIO * baseline "
                         "(default 0.90, i.e. >10%% regression)")
    args = ap.parse_args()

    try:
        base, base_threads = load_doc(args.baseline)
        fresh, fresh_threads = load_doc(args.fresh)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_perf: {e}", file=sys.stderr)
        return 2

    hosts_differ = (base_threads is not None
                    and fresh_threads is not None
                    and base_threads != fresh_threads)
    if hosts_differ:
        print(f"  NOTE host_threads differ (baseline {base_threads}, "
              f"fresh {fresh_threads}): timing regressions are "
              f"warnings, not failures")

    failures = []
    warnings = []
    for name, cell in sorted(fresh.items()):
        if cell.get("identical") is not True:
            failures.append(
                f"{name}: fast path DIVERGED from reference arm")
            continue
        ref = base.get(name)
        if ref is None:
            print(f"  {name}: new cell (no baseline), "
                  f"{cell['pps']:.0f} pps")
            continue
        ratio = cell["pps"] / ref["pps"]
        line = (f"{name}: {cell['pps']:.0f} pps vs baseline "
                f"{ref['pps']:.0f} ({ratio:.2f}x)")
        if ratio < args.fail_below:
            if hosts_differ:
                warnings.append(line + " [host mismatch: warn only]")
            else:
                failures.append(line)
        elif ratio < args.warn_below:
            warnings.append(line)
        else:
            print(f"  ok   {line}")
    for name in sorted(set(base) - set(fresh)):
        print(f"  {name}: in baseline only (not timed this run)")

    for line in warnings:
        print(f"  WARN {line}")
    for line in failures:
        print(f"  FAIL {line}")
    if failures:
        print(f"check_perf: {len(failures)} cell(s) regressed past "
              f"{(1 - args.fail_below) * 100:.0f}%", file=sys.stderr)
        return 1
    print(f"check_perf: pass ({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
