/**
 * @file
 * clumsy_sweep: parallel experiment-grid driver.
 *
 * Expands a declarative grid over {app, Cr, scheme, codec, plane,
 * fault-scale, pes, dispatch, per-pe-cr}, runs every cell's golden
 * pass and faulty trials as
 * independent jobs on a work-stealing pool, and writes JSON (and
 * optionally CSV) with full provenance. Aggregates are bit-identical
 * for any --jobs value; see EXPERIMENTS.md for the schema.
 *
 *   clumsy_sweep --grid 'app=route,md5;cr=1,0.5,0.25;scheme=two-strike' \
 *                --jobs 8 --out sweep.json
 *   clumsy_sweep --grid 'app=all;cr=0.5,0.25;trials=8' --out t1.json \
 *                --resume
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/logging.hh"
#include "sweep/runner.hh"
#include "sweep/sink.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string grid, outPath, csvPath;
    unsigned jobs = 0;
    bool resume = false, noTiming = false, quietProgress = false;

    cli::ArgParser parser(
        "clumsy_sweep",
        "Run an experiment grid in parallel and export the "
        "aggregated results.");
    parser.section("grid");
    parser.optString(
        "--grid", "SPEC",
        "semicolon-separated key=value,value,... dimensions; keys: "
        "app cr scheme codec plane fault-scale pes dispatch per-pe-cr "
        "dvs mshrs l2 gap chip-jobs chips dram-banks card-jobs flows "
        "churn faultmap retire ctrl updates packets trials seed "
        "fault-seed map-seed",
        &grid);
    parser.section("execution");
    parser.optUnsigned("--jobs", "N",
                       "worker threads (default: all hardware threads)",
                       &jobs);
    parser.flag("--resume",
                "skip cells already present in the --out file", &resume);
    parser.section("output");
    parser.optString("--out", "FILE", "JSON output path (required)",
                     &outPath);
    parser.optString("--csv", "FILE", "also write a flat CSV table",
                     &csvPath);
    parser.flag("--no-timing",
                "omit run-environment provenance (git, jobs, wall "
                "times) so the output depends only on the grid",
                &noTiming);
    parser.flag("--quiet", "suppress per-cell progress on stderr",
                &quietProgress);
    parser.epilog(
        "example:\n"
        "  clumsy_sweep --grid 'app=all;cr=0.5,0.25;trials=8' \\\n"
        "               --jobs 8 --out table1.json");
    parser.parse(argc, argv);

    if (grid.empty())
        fatal("--grid is required (try --help)");
    if (outPath.empty())
        fatal("--out is required (try --help)");

    const sweep::SweepSpec spec = sweep::SweepSpec::parse(grid);

    std::map<std::string, sweep::CellOutcome> completed;
    if (resume)
        completed = sweep::loadCompletedCells(outPath);

    const std::size_t total = spec.cellCount();
    sweep::ProgressFn progress;
    if (!quietProgress) {
        progress = [](const sweep::SweepCell &cell, double wallMs,
                      std::size_t done, std::size_t n) {
            std::fprintf(stderr, "[%zu/%zu] %s  %.0f ms\n", done, n,
                         cell.key().c_str(), wallMs);
        };
    }

    const sweep::SweepOutcome outcome = sweep::runSweep(
        spec, jobs, resume ? &completed : nullptr, progress);

    sweep::writeFile(outPath, sweep::renderJson(outcome, !noTiming));
    if (!csvPath.empty())
        sweep::writeFile(csvPath, sweep::renderCsv(outcome));

    std::fprintf(stderr,
                 "%zu cells (%zu resumed), %u jobs, %.0f ms -> %s\n",
                 total, outcome.resumedCount, outcome.jobs,
                 outcome.wallMs, outPath.c_str());
    return 0;
}
