/**
 * @file
 * clumsy_card: command-line driver for the line-card tier.
 *
 * Runs a workload on a card of N chip models (src/linecard/) — each an
 * N-engine clumsy chip — behind an inter-chip dispatcher, with an
 * analytical banked DRAM shared by every chip, and prints card-level
 * results: aggregate throughput, per-chip packet counts and makespans,
 * DRAM row-buffer hit/miss/conflict accounting, and ingress drops.
 *
 *   clumsy_card --app route --chips 4 --pes 2 --cr 0.5
 *   clumsy_card --app nat --chips 8 --card-dispatch flow --dram-banks 4
 *   clumsy_card --app crc --chips 4 --card-jobs 0 --json
 *   clumsy_card --app lpm --chips 2 --ctrl-rate 50 --ingress-cap 32
 *   clumsy_card --app md5 --chips 1 --dram-banks 0   # == clumsy_npu
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/session.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "ctrl/ctrl.hh"
#include "linecard/card.hh"
#include "npu/config.hh"
#include "sweep/json.hh"
#include "sweep/sink.hh"
#include "sweep/spec.hh"

using namespace clumsy;

namespace
{

void
printJson(const std::string &app, const core::ExperimentConfig &cfg,
          const npu::NpuConfig &npuCfg,
          const linecard::CardConfig &cardCfg,
          const linecard::CardExperimentResult &res)
{
    std::string perChipCr;
    for (std::size_t i = 0; i < cardCfg.perChipCr.size(); ++i) {
        if (i)
            perChipCr += ":";
        perChipCr += sweep::formatDouble(cardCfg.perChipCr[i]);
    }

    std::string out = "{\n";
    out += "  \"app\": \"" + sweep::jsonEscape(app) + "\",\n";
    out += "  \"cr\": " + sweep::jsonNumber(cfg.cr) + ",\n";
    out += "  \"scheme\": \"" + sweep::schemeName(cfg.scheme) + "\",\n";
    out += "  \"plane\": \"" + sweep::planeName(cfg.plane) + "\",\n";
    out += "  \"chips\": " + std::to_string(cardCfg.chips) + ",\n";
    out += "  \"card_dispatch\": \"" +
           npu::to_string(cardCfg.dispatch) + "\",\n";
    out += "  \"per_chip_cr\": \"" +
           (perChipCr.empty() ? std::string("uniform") : perChipCr) +
           "\",\n";
    out += "  \"dram_banks\": " + std::to_string(cardCfg.dram.banks) +
           ",\n";
    if (cardCfg.dram.banks > 0) {
        out += "  \"dram_row_bytes\": " +
               std::to_string(cardCfg.dram.rowBytes) + ",\n";
        out += "  \"dram_hit_cycles\": " +
               std::to_string(cardCfg.dram.rowHitCycles) + ",\n";
        out += "  \"dram_miss_cycles\": " +
               std::to_string(cardCfg.dram.rowMissCycles) + ",\n";
        out += "  \"dram_conflict_cycles\": " +
               std::to_string(cardCfg.dram.rowConflictCycles) + ",\n";
    }
    out += "  \"ingress_cap\": " +
           std::to_string(cardCfg.ingressCapacity) + ",\n";
    out += "  \"pes\": " + std::to_string(npuCfg.peCount) + ",\n";
    out += "  \"dispatch\": \"" + npu::to_string(npuCfg.dispatch) +
           "\",\n";
    out += "  \"dvs\": \"" + npu::to_string(npuCfg.dvs) + "\",\n";
    out += "  \"l2\": \"" + npu::to_string(npuCfg.l2) + "\",\n";
    out += "  \"queue_cap\": " + std::to_string(npuCfg.queueCapacity) +
           ",\n";
    out += "  \"arrival_gap_cycles\": " +
           std::to_string(npuCfg.arrivalGapCycles) + ",\n";
    if (cfg.ctrl.rate != 0) {
        out += "  \"ctrl\": " + std::to_string(cfg.ctrl.rate) + ",\n";
        out += "  \"updates\": \"" + ctrl::to_string(cfg.ctrl.mix) +
               "\",\n";
    }
    out += "  \"packets\": " + std::to_string(cfg.numPackets) + ",\n";
    out += "  \"trials\": " + std::to_string(cfg.trials) + ",\n";
    out += "  \"seed\": " + std::to_string(cfg.traceSeed) + ",\n";
    out += "  \"fault_seed\": " + std::to_string(cfg.faultSeed) + ",\n";
    // CardConfig::cardJobs is deliberately not echoed: it is a host
    // scheduling knob, not part of the modeled card, and the JSON of
    // --card-jobs K must stay byte-identical to --card-jobs 1.
    out += "  \"value_digest\": \"" +
           sweep::hexU64(res.golden.valueDigest) + "\",\n";
    out += "  \"fatal_fraction\": " +
           sweep::jsonNumber(res.fatalFraction) + ",\n";
    out += "  \"card\": {\"golden\": " +
           sweep::cardMetricsJson(res.golden.card) +
           ", \"faulty\": " + sweep::cardMetricsJson(res.faultyCard) +
           "}\n";
    out += "}\n";
    std::fputs(out.c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string app, dispatch = "rr", cardDispatch = "rr",
                perChipCrText, dvs = "fault", l2 = "private";
    core::ExperimentConfig cfg;
    cfg.numPackets = 2000;
    cfg.trials = 4;
    npu::NpuConfig npuCfg;
    linecard::CardConfig cardCfg;
    apps::SessionParams sess;
    std::uint64_t arrivalGap = 0;
    std::string faultMapText = "off";
    std::uint64_t mapSeed = fault::FaultMapSpec{}.seed;
    bool drop = false, csv = false, json = false;

    cli::ArgParser parser(
        "clumsy_card",
        "Run one workload on a line card of N clumsy chips sharing a "
        "banked DRAM and report card-level metrics.");
    parser.section("workload");
    parser.optString("--app", "NAME",
                     "crc tl route drr nat md5 url (paper) + adpcm "
                     "session lpm",
                     &app);
    parser.section("traffic");
    parser.option("--flows", "N",
                  "live flow population override (default: the app's)",
                  [&cfg](const std::string &v) {
                      const std::uint64_t n = cli::parseU64("flows", v);
                      if (n == 0)
                          fatal("flows must be >= 1");
                      cfg.traceFlows = static_cast<std::uint32_t>(n);
                  });
    parser.optU64("--churn", "N",
                  "mean flow lifetime in packets; forces the churn "
                  "traffic model on (default: the app's own setting)",
                  &cfg.churnLifetime);
    parser.option("--ctrl-rate", "N",
                  "control-plane updates per 1000 packets "
                  "(default 0 = no control plane)",
                  [&cfg](const std::string &v) {
                      cfg.ctrl.rate = static_cast<std::uint32_t>(
                          cli::parseU64("ctrl-rate", v));
                  });
    parser.option("--ctrl-mix", "M",
                  "control-plane event mix: fib | nat | session | all "
                  "(default all)",
                  [&cfg](const std::string &v) {
                      cfg.ctrl.mix = ctrl::mixFromString(v);
                  });
    parser.option("--session-capacity", "N",
                  "session app: table slots (default 1024)",
                  [&sess](const std::string &v) {
                      const std::uint64_t n =
                          cli::parseU64("session-capacity", v);
                      if (n == 0)
                          fatal("session capacity must be >= 1");
                      sess.capacity = static_cast<std::uint32_t>(n);
                  });
    parser.section("card");
    parser.option("--chips", "N",
                  "chips on the card (default 1)",
                  [&cardCfg](const std::string &v) {
                      const std::uint64_t n =
                          cli::parseU64("chips", v);
                      if (n == 0)
                          fatal("a line card needs at least one chip, "
                                "got 0");
                      cardCfg.chips = static_cast<unsigned>(n);
                  });
    parser.optString("--card-dispatch", "P",
                     "inter-chip dispatch: rr | flow | shortest "
                     "(default rr)",
                     &cardDispatch);
    parser.option("--dram-banks", "N",
                  "shared-DRAM banks (default 8; 0 = flat penalty, "
                  "byte-identical to clumsy_npu)",
                  [&cardCfg](const std::string &v) {
                      cardCfg.dram.banks = static_cast<unsigned>(
                          cli::parseU64("dram-banks", v));
                  });
    parser.option("--dram-row-bytes", "N",
                  "DRAM row-buffer size, bytes, power of two "
                  "(default 2048)",
                  [&cardCfg](const std::string &v) {
                      cardCfg.dram.rowBytes = static_cast<std::uint32_t>(
                          cli::parseU64("dram-row-bytes", v));
                  });
    parser.option("--dram-hit", "N",
                  "row-buffer hit latency, cycles (default 60; also "
                  "the flat penalty the model replaces)",
                  [&cardCfg](const std::string &v) {
                      cardCfg.dram.rowHitCycles =
                          static_cast<std::int64_t>(
                              cli::parseU64("dram-hit", v));
                  });
    parser.option("--dram-miss", "N",
                  "closed-row miss latency, cycles (default 90)",
                  [&cardCfg](const std::string &v) {
                      cardCfg.dram.rowMissCycles =
                          static_cast<std::int64_t>(
                              cli::parseU64("dram-miss", v));
                  });
    parser.option("--dram-conflict", "N",
                  "row-conflict latency, cycles (default 135)",
                  [&cardCfg](const std::string &v) {
                      cardCfg.dram.rowConflictCycles =
                          static_cast<std::int64_t>(
                              cli::parseU64("dram-conflict", v));
                  });
    parser.optUnsigned("--card-jobs", "N",
                       "chips simulating concurrently; results are "
                       "byte-identical for every value (default 1 = "
                       "serial, 0 = hardware)",
                       &cardCfg.cardJobs);
    parser.optUnsigned("--ingress-cap", "N",
                       "per-chip ingress FIFO capacity, packets "
                       "(default 0 = unbounded)",
                       &cardCfg.ingressCapacity);
    parser.optString("--per-chip-cr", "LIST",
                     "colon-separated per-chip Cr list "
                     "(e.g. 1:0.5:0.5:0.25; default: uniform)",
                     &perChipCrText);
    parser.section("chip");
    parser.optUnsigned("--pes", "N",
                       "processing engines per chip (default 1)",
                       &npuCfg.peCount);
    parser.optString("--dispatch", "P",
                     "intra-chip dispatch: rr | flow | shortest "
                     "(default rr)",
                     &dispatch);
    parser.optUnsigned("--queue-cap", "N",
                       "per-engine input queue capacity (default 16)",
                       &npuCfg.queueCapacity);
    parser.flag("--drop",
                "drop arrivals when the chosen queue is full "
                "(default: backpressure)",
                &drop);
    parser.optU64("--arrival-gap", "N",
                  "inter-arrival gap, base cycles (default 0 = "
                  "saturated)",
                  &arrivalGap);
    parser.optString("--dvs", "M",
                     "per-engine frequency adaptation: static | fault "
                     "| queue (default fault)",
                     &dvs);
    parser.optUnsigned("--mshrs", "K",
                       "shared-L2 port MSHRs (default 1)",
                       &npuCfg.mshrs);
    parser.optString("--l2", "M",
                     "L2 contents: private | shared (default private)",
                     &l2);
    parser.section("operating point");
    parser.optDouble("--cr", "X",
                     "relative cycle time (1, 0.75, 0.5, 0.25)",
                     &cfg.cr);
    parser.flag("--dynamic", "use the dynamic frequency controller",
                [&cfg]() { cfg.dynamicFrequency = true; });
    parser.option("--scheme", "S",
                  "no-detection | one-strike | two-strike | "
                  "three-strike (default: no-detection)",
                  [&cfg](const std::string &v) {
                      cfg.scheme = sweep::schemeFromName(v);
                  });
    parser.optString("--fault-map", "MAP",
                     "weak-cell map: off | spatial | FILE (the card "
                     "salts the generation seed per chip and engine)",
                     &faultMapText);
    parser.optU64("--fault-map-seed", "N",
                  "map generation seed (spatial mode)", &mapSeed);
    parser.section("experiment");
    parser.optU64("--packets", "N",
                  "packets per run, card-wide (default 2000)",
                  &cfg.numPackets);
    parser.optUnsigned("--trials", "N", "faulty trials (default 4)",
                       &cfg.trials);
    parser.option("--plane", "P", "both | control | data (default both)",
                  [&cfg](const std::string &v) {
                      cfg.plane = sweep::planeFromString(v);
                  });
    parser.optDouble("--fault-scale", "X",
                     "fault-rate multiplier (default 1)",
                     &cfg.faultScale);
    parser.optU64("--seed", "N", "trace seed", &cfg.traceSeed);
    parser.optU64("--fault-seed", "N", "fault-stream seed",
                  &cfg.faultSeed);
    parser.section("output");
    parser.flag("--csv", "CSV tables", &csv);
    parser.flag("--json", "machine-readable JSON", &json);
    parser.parse(argc, argv);

    if (app.empty())
        fatal("--app is required (try --help)");

    cfg.processor.faultMap = fault::faultMapSpecFromString(faultMapText);
    cfg.processor.faultMap.seed = mapSeed;

    npuCfg.dispatch = npu::dispatchFromString(dispatch);
    npuCfg.dvs = npu::dvsFromString(dvs);
    npuCfg.l2 = npu::l2ModeFromString(l2);
    npuCfg.dropWhenFull = drop;
    npuCfg.arrivalGapCycles = static_cast<std::int64_t>(arrivalGap);

    cardCfg.dispatch = npu::dispatchFromString(cardDispatch);
    for (const std::string &piece : cli::split(perChipCrText, ':'))
        cardCfg.perChipCr.push_back(
            cli::parseDouble("--per-chip-cr", piece));
    cardCfg.validate();

    const core::AppFactory factory =
        app == "session"
            ? core::AppFactory([sess] {
                  return std::make_unique<apps::SessionApp>(sess);
              })
            : apps::appFactory(app);

    const linecard::CardExperimentResult res =
        linecard::runCardExperiment(factory, cfg, npuCfg, cardCfg);

    if (json) {
        printJson(app, cfg, npuCfg, cardCfg, res);
        return 0;
    }

    const linecard::CardMetrics &g = res.golden.card;
    const linecard::CardMetrics &f = res.faultyCard;
    TextTable table("clumsy_card: " + app + " on " +
                    std::to_string(cardCfg.chips) + " chip" +
                    (cardCfg.chips == 1 ? "" : "s") + " x " +
                    std::to_string(npuCfg.peCount) + " PE (" +
                    npu::to_string(cardCfg.dispatch) + ", dram-banks=" +
                    std::to_string(cardCfg.dram.banks) + ") @ Cr=" +
                    TextTable::num(cfg.cr, 2));
    table.header({"metric", "golden", "faulty (avg)"});
    table.row({"packets processed",
               TextTable::num(g.packetsProcessed, 0),
               TextTable::num(f.packetsProcessed, 0)});
    table.row({"makespan [cycles]",
               TextTable::num(g.makespanCycles, 0),
               TextTable::num(f.makespanCycles, 0)});
    table.row({"throughput [pkt/s]",
               TextTable::num(g.throughputPps, 0),
               TextTable::num(f.throughputPps, 0)});
    table.row({"load imbalance",
               TextTable::num(g.loadImbalance, 3),
               TextTable::num(f.loadImbalance, 3)});
    table.row({"ingress drops",
               TextTable::num(g.ingressDrops, 0),
               TextTable::num(f.ingressDrops, 0)});
    table.row({"DRAM accesses",
               TextTable::num(g.dramAccesses, 0),
               TextTable::num(f.dramAccesses, 0)});
    table.row({"DRAM row hits",
               TextTable::num(g.dramRowHits, 0),
               TextTable::num(f.dramRowHits, 0)});
    table.row({"DRAM row misses",
               TextTable::num(g.dramRowMisses, 0),
               TextTable::num(f.dramRowMisses, 0)});
    table.row({"DRAM row conflicts",
               TextTable::num(g.dramRowConflicts, 0),
               TextTable::num(f.dramRowConflicts, 0)});
    table.row({"DRAM row-hit fraction",
               TextTable::num(g.dramRowHitFraction, 4),
               TextTable::num(f.dramRowHitFraction, 4)});
    table.row({"DRAM stall [cycles]",
               TextTable::num(g.dramStallCycles, 0),
               TextTable::num(f.dramStallCycles, 0)});
    table.row({"fatal fraction", "0",
               TextTable::num(res.fatalFraction, 3)});
    std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);

    TextTable chips("per-chip (golden)");
    chips.header({"chip", "packets", "makespan [cycles]"});
    for (std::size_t c = 0; c < g.chipPackets.size(); ++c)
        chips.row({std::to_string(c),
                   TextTable::num(g.chipPackets[c], 0),
                   TextTable::num(g.chipMakespanCycles[c], 0)});
    std::fputs((csv ? chips.csv() : chips.render()).c_str(), stdout);
    return 0;
}
